"""Opt-in runtime sanitizer for the placement engine and pool ledger.

``REPRO_SANITIZE=1`` (see ``repro/__init__.py``) wraps the mutators of
:class:`repro.cluster.engine.ArrayPlacementEngine` and
:class:`repro.cluster.pool_topology.PoolGroupLedger` with invariant checks
that run after every state change:

* **No negative accounting** -- ``pool_used_gb``/``pool_free_gb`` never go
  below the engine's own drift clamp (``-1e-6``).
* **Conservation per group** -- ``free + used == capacity`` for every
  finite, non-degraded pool group.  Degraded groups are exempt *between*
  the unmediated release and the injector's re-clamp (``resync``): that
  transient is part of the documented fault protocol (DESIGN.md section
  11), not a bug.
* **Live-handle consistency** -- ``remove``/``migrate_pool_to_local`` must
  name a live handle (not freed, not out of range), and ``running_vms``
  must equal the number of live handles after every mutation.  This is the
  "no silent kills" check: a double-remove or a stale handle inherited
  across recycling trips immediately instead of corrupting a later VM.

Violations raise :class:`SanitizerError` (an ``AssertionError`` subclass)
at the faulty call, so a tier-1 run under the sanitizer pinpoints the
mutation that broke the ledger rather than the replay that later noticed.

The wrappers only see the engine-method path.  The inlined hot loops
(``_run_array_presorted``, ``_replay_crossshard_inlined``) bypass them by
design; differential tests pin those byte-identical to the method path, so
sanitizing the method path covers both.

Overhead is a few dict walks per mutation -- fine for tests, not for
benchmarks; that is why it is opt-in.
"""

from __future__ import annotations

import math
import os
import weakref
from typing import Dict, Optional

__all__ = [
    "SanitizerError",
    "install",
    "uninstall",
    "is_installed",
    "maybe_install_from_env",
]

#: Engine's own negative-drift clamp threshold (engine.remove).
_NEG_TOL = 1e-6
#: Conservation slack: repeated fractional +=/-= drift plus clamp resets.
_CONSERVE_TOL = 1e-3

_TRUTHY = {"1", "true", "yes", "on"}


class SanitizerError(AssertionError):
    """A simulation invariant was violated by the wrapped mutation."""


_installed = False
_originals: Dict[str, object] = {}
#: Live ledgers, so an engine's pool dicts can be matched to their owner.
_ledgers: "weakref.WeakSet" = weakref.WeakSet()
#: Engines without a ledger: per-group capacity snapshot at first sight.
_snapshots: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _find_ledger(engine):
    for ledger in _ledgers:
        if ledger.free_gb is engine.pool_free_gb:
            return ledger
    return None


def _check_non_negative(engine) -> None:
    for group, used in engine.pool_used_gb.items():
        if used < -_NEG_TOL:
            raise SanitizerError(
                f"pool group {group}: used_gb went negative ({used} GB)"
            )
    for group, free in engine.pool_free_gb.items():
        if free < -_NEG_TOL:
            raise SanitizerError(
                f"pool group {group}: free_gb went negative ({free} GB)"
            )


def _check_conservation(engine) -> None:
    ledger = _find_ledger(engine)
    if ledger is not None:
        for group, capacity in ledger.capacity_gb.items():
            if not math.isfinite(capacity) or ledger.is_degraded(group):
                continue
            total = ledger.free_gb[group] + ledger.used_gb[group]
            if abs(total - capacity) > _CONSERVE_TOL:
                raise SanitizerError(
                    f"pool group {group}: free+used={total} GB drifted from "
                    f"capacity={capacity} GB"
                )
        return
    snapshot = _snapshots.get(engine)
    if snapshot is None:
        snapshot = {
            group: engine.pool_free_gb[group] + engine.pool_used_gb[group]
            for group in engine.pool_free_gb
        }
        _snapshots[engine] = snapshot
        return
    for group, expected in snapshot.items():
        if not math.isfinite(expected):
            continue
        total = (engine.pool_free_gb.get(group, 0.0)
                 + engine.pool_used_gb.get(group, 0.0))
        if abs(total - expected) > _CONSERVE_TOL:
            raise SanitizerError(
                f"pool group {group}: free+used={total} GB drifted from "
                f"initial capacity={expected} GB"
            )


def _check_handles(engine) -> None:
    live = len(engine.vm_server) - len(engine._free_handles)
    if engine.running_vms != live:
        raise SanitizerError(
            f"running_vms={engine.running_vms} but {live} handles are live "
            "-- a placement or removal bypassed the accounting"
        )


def _check_live_handle(engine, handle: int, op: str) -> None:
    if not 0 <= handle < len(engine.vm_server):
        raise SanitizerError(f"{op}({handle}): handle out of range")
    if handle in engine._free_handles:
        raise SanitizerError(
            f"{op}({handle}): handle is already free -- double remove or "
            "stale handle reused across recycling (silent kill)"
        )


def _after_engine_mutation(engine) -> None:
    _check_non_negative(engine)
    _check_handles(engine)
    _check_conservation(engine)


def _check_ledger(ledger, group) -> None:
    """Validate the one group a degrade/repair/resync just touched.

    Only that group: the injector re-clamps degraded groups one at a time,
    so a *different* degraded group may legitimately hold unmediated free
    until its own resync call lands.
    """
    if group not in ledger.capacity_gb:
        return
    capacity = ledger.capacity_gb[group]
    used = ledger.used_gb[group]
    free = ledger.free_gb[group]
    if used < -_NEG_TOL or free < -_NEG_TOL:
        raise SanitizerError(
            f"ledger group {group}: negative accounting "
            f"(used={used}, free={free})"
        )
    if math.isfinite(capacity) and free > capacity + _CONSERVE_TOL:
        raise SanitizerError(
            f"ledger group {group}: free={free} GB exceeds "
            f"capacity={capacity} GB"
        )


def install() -> None:
    """Wrap the engine and ledger mutators with invariant checks."""
    global _installed
    if _installed:
        return
    from repro.cluster.engine import ArrayPlacementEngine
    from repro.cluster.pool_topology import PoolGroupLedger

    _originals["place"] = ArrayPlacementEngine.place
    _originals["remove"] = ArrayPlacementEngine.remove
    _originals["migrate"] = ArrayPlacementEngine.migrate_pool_to_local
    _originals["ledger_init"] = PoolGroupLedger.__init__
    _originals["degrade"] = PoolGroupLedger.degrade
    _originals["repair"] = PoolGroupLedger.repair
    _originals["resync"] = PoolGroupLedger.resync

    def place(self, cores, local_gb, pool_gb):
        handle = _originals["place"](self, cores, local_gb, pool_gb)
        if handle >= 0:
            _after_engine_mutation(self)
        return handle

    def remove(self, handle):
        _check_live_handle(self, handle, "remove")
        _originals["remove"](self, handle)
        _after_engine_mutation(self)

    def migrate_pool_to_local(self, handle):
        _check_live_handle(self, handle, "migrate_pool_to_local")
        moved = _originals["migrate"](self, handle)
        _after_engine_mutation(self)
        return moved

    def ledger_init(self, capacities):
        _originals["ledger_init"](self, capacities)
        _ledgers.add(self)

    def _wrap_ledger(name):
        def wrapped(self, group, *args, **kwargs):
            result = _originals[name](self, group, *args, **kwargs)
            _check_ledger(self, group)
            return result
        wrapped.__name__ = name
        return wrapped

    ArrayPlacementEngine.place = place
    ArrayPlacementEngine.remove = remove
    ArrayPlacementEngine.migrate_pool_to_local = migrate_pool_to_local
    PoolGroupLedger.__init__ = ledger_init
    PoolGroupLedger.degrade = _wrap_ledger("degrade")
    PoolGroupLedger.repair = _wrap_ledger("repair")
    PoolGroupLedger.resync = _wrap_ledger("resync")
    _installed = True


def uninstall() -> None:
    """Restore the unwrapped mutators (test teardown)."""
    global _installed
    if not _installed:
        return
    from repro.cluster.engine import ArrayPlacementEngine
    from repro.cluster.pool_topology import PoolGroupLedger

    ArrayPlacementEngine.place = _originals["place"]
    ArrayPlacementEngine.remove = _originals["remove"]
    ArrayPlacementEngine.migrate_pool_to_local = _originals["migrate"]
    PoolGroupLedger.__init__ = _originals["ledger_init"]
    PoolGroupLedger.degrade = _originals["degrade"]
    PoolGroupLedger.repair = _originals["repair"]
    PoolGroupLedger.resync = _originals["resync"]
    _originals.clear()
    _installed = False


def is_installed() -> bool:
    return _installed


def maybe_install_from_env(env: Optional[Dict[str, str]] = None) -> bool:
    """Install when ``REPRO_SANITIZE`` is set truthy; returns whether on.

    Called from ``repro/__init__``, so worker processes spawned by the
    process pools inherit the sanitizer through the environment.
    """
    value = (env or os.environ).get("REPRO_SANITIZE", "")
    if value.strip().lower() in _TRUTHY:
        install()
        return True
    return False

"""Finding records, inline suppressions, and the checked-in baseline.

A *finding* is one rule violation at one source location.  Two escape
hatches keep the lint adoptable on a living codebase:

* **Inline suppressions** -- a ``# repro: noqa DET002 -- reason`` comment on
  the flagged line silences that rule there.  The reason is mandatory
  (``NOQ001`` otherwise) and a suppression that matches no finding is itself
  flagged (``NOQ002``), so the suppression inventory cannot silently rot.
* **Baseline** -- a committed JSON file of known findings
  (``repro_analysis_baseline.json``).  CI fails only on findings *not* in
  the baseline, so new hazards are caught without demanding a big-bang
  cleanup.  Baseline entries are keyed by ``(rule, path, snippet)`` rather
  than line numbers, so unrelated edits do not invalidate them.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Collection, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Suppression",
    "parse_suppressions",
    "apply_suppressions",
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
    "BASELINE_DEFAULT",
]

#: Default baseline path, relative to the invocation directory (repo root).
BASELINE_DEFAULT = "repro_analysis_baseline.json"

#: Matches comments of the form ``repro: noqa DET001, DET002 -- reason``
#: behind a hash (reason mandatory).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>.*)$")
_CODE_RE = re.compile(r"\b[A-Z]{3}\d{3}\b")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: rule code, e.g. ``"DET002"``
    path: str  #: posix-style path as given to the analyzer
    line: int  #: 1-indexed source line
    message: str  #: what is wrong
    hint: str = ""  #: fix-it hint (how to make it deterministic/safe)
    snippet: str = ""  #: stripped source line, used for baseline keying

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used by the baseline."""
        return (self.rule, self.path, self.snippet)

    def format(self, show_hint: bool = True) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if show_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Suppression:
    """One parsed ``# repro: noqa`` comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    @property
    def valid(self) -> bool:
        return bool(self.codes) and bool(self.reason.strip())


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Extract ``# repro: noqa`` suppressions, keyed by 1-indexed line.

    Only genuine comment tokens count -- a docstring or string literal
    *mentioning* the syntax is not a suppression.
    """
    out: Dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        rest = match.group("rest")
        codes_part, sep, reason = rest.partition("--")
        codes = tuple(_CODE_RE.findall(codes_part))
        out[lineno] = Suppression(
            line=lineno, codes=codes, reason=reason.strip() if sep else ""
        )
    return out


def apply_suppressions(
    findings: Sequence[Finding], source: str, path: str,
    known: Optional[Collection[str]] = None,
) -> List[Finding]:
    """Filter suppressed findings; flag malformed and unused suppressions.

    Returns the surviving findings plus any ``NOQ001`` (suppression without
    codes or reason) and ``NOQ002`` (suppression matching no finding on its
    line) findings, sorted by line.

    ``known`` is the set of rule codes the calling pass can produce; it
    scopes the hygiene findings so passes don't flag each other's
    suppressions: ``NOQ002`` is emitted only for suppressions naming a
    known code, and ``NOQ001`` only when the pass owns it (``"NOQ001" in
    known``, or ``known is None`` meaning "all rules").
    """
    suppressions = parse_suppressions(source)
    kept: List[Finding] = []
    for finding in findings:
        suppression = suppressions.get(finding.line)
        if (suppression is not None and suppression.valid
                and finding.rule in suppression.codes):
            suppression.used = True
            continue
        kept.append(finding)

    lines = source.splitlines()
    for suppression in suppressions.values():  # repro: noqa DET007 -- keyed by line number; the tokenizer inserts in line order and the result is re-sorted below
        snippet = lines[suppression.line - 1].strip()
        if not suppression.valid:
            if known is not None and "NOQ001" not in known:
                continue
            kept.append(Finding(
                rule="NOQ001", path=path, line=suppression.line,
                message="suppression needs codes and a reason: "
                        "'# repro: noqa DET00x -- reason'",
                hint="state which rule is suppressed and why, or delete "
                     "the comment",
                snippet=snippet,
            ))
        elif not suppression.used:
            if known is not None and not any(
                code in known for code in suppression.codes
            ):
                continue
            kept.append(Finding(
                rule="NOQ002", path=path, line=suppression.line,
                message=f"suppression for {', '.join(suppression.codes)} "
                        "matches no finding on this line",
                hint="the code it excused is gone or moved; delete or move "
                     "the comment",
                snippet=snippet,
            ))
    kept.sort(key=lambda f: (f.line, f.rule))
    return kept


# -- baseline ----------------------------------------------------------------------


def load_baseline(path) -> Counter:
    """Load a baseline file into a ``Counter`` of finding fingerprints.

    A missing file is an empty baseline (everything is a new finding).
    """
    path = Path(path)
    if not path.is_file():
        return Counter()
    data = json.loads(path.read_text())
    if data.get("version") != 1:
        raise ValueError(f"{path}: unknown baseline version {data.get('version')!r}")
    counts: Counter = Counter()
    for entry in data.get("findings", ()):
        key = (entry["rule"], entry["path"], entry["snippet"])
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(findings: Iterable[Finding], path) -> None:
    """Write the baseline file for the given findings (sorted, counted)."""
    counts = Counter(f.fingerprint() for f in findings)
    entries = [
        {"rule": rule, "path": fpath, "snippet": snippet, "count": count}
        for (rule, fpath, snippet), count in sorted(counts.items())
    ]
    payload = {
        "version": 1,
        "comment": (
            "Known repro.analysis findings; CI fails only on findings not "
            "listed here.  Regenerate with: "
            "python -m repro.analysis lint src --update-baseline"
        ),
        "findings": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def diff_against_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> List[Finding]:
    """Findings not covered by the baseline (per-fingerprint counted)."""
    budget = Counter(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = finding.fingerprint()
        if budget[key] > 0:
            budget[key] -= 1
        else:
            new.append(finding)
    return new

"""Fault-determinism differential check (``repro.analysis determinism``).

Runs a fixed set of seeded fault-injected replays -- every replay path
that can carry a :class:`~repro.cluster.faults.FaultSchedule` -- and
emits canonical JSON (sorted keys) on stdout, one object per line:

* a single-cluster array replay,
* cross-shard replays on both topologies (per-shard and spanning, with
  the shard sizes chosen so spanning groups cross the shard seam),
* a fleet run, serial vs process-pool (shardwise ``for_shard`` routing).

CI runs this twice with different ``PYTHONHASHSEED`` values and diffs the
outputs: seeded fault injection must be hash-seed independent (DESIGN.md
section 11).  The check fails within one process if the serial and
process-pool fleets disagree.

Historically ``scripts/check_fault_determinism.py`` (still a thin shim);
the replay set and constants moved here unchanged so the CLI, the shim,
and future checks share one definition.
"""

from __future__ import annotations

import json
import sys
from typing import List

__all__ = ["run_determinism_check", "main"]

N_SERVERS = 10
DURATION_DAYS = 0.5
POOL_CAPACITY_GB_PER_GROUP = 300.0
SEED = 21


def _server_config():
    from repro.cluster.server import ServerConfig

    return ServerConfig(
        name="fault-determinism", sockets=2, cores_per_socket=24,
        dram_per_socket_gb=48.0,
    )


def _make_config(index, server_config):
    from repro.cluster import TraceGenConfig

    return TraceGenConfig(
        cluster_id=f"det-{index:02d}", n_servers=N_SERVERS,
        duration_days=DURATION_DAYS, mean_lifetime_hours=4.0,
        target_core_utilization=0.95, seed=SEED + index,
        server_config=server_config,
    )


def _make_schedule(n_groups, shard=0):
    from repro.cluster.faults import FaultSchedule

    return FaultSchedule.seeded(
        groups=range(n_groups),
        horizon_s=DURATION_DAYS * 86400.0,
        mean_time_between_failures_s=3.0 * 3600.0,
        repair_delay_s=3600.0,
        seed=SEED,
        shard=shard,
        migration_retry_budget=1,
    )


def run_determinism_check(emit=print) -> int:
    """Emit canonical per-replay fault stats; 1 if serial != pool fleet."""
    from repro.cluster import ClusterSimulator, TraceGenerator
    from repro.cluster.faults import FaultSchedule
    from repro.cluster.fleet import FleetSimulator, static_policy_factory
    from repro.cluster.pool_topology import PoolTopology, replay_crossshard
    from repro.core.policies import StaticFractionPolicy

    server_config = _server_config()

    def line(label, stats):
        emit(json.dumps({"replay": label, "stats": stats.as_dict()},
                        sort_keys=True))

    traces = [
        TraceGenerator(_make_config(i, server_config)).generate_bulk()
        for i in range(2)
    ]
    policy = StaticFractionPolicy(fraction=0.6, seed=SEED)

    # Single-cluster array replay.
    sim = ClusterSimulator(
        n_servers=N_SERVERS, pool_size_sockets=8,
        pool_capacity_gb_per_group=POOL_CAPACITY_GB_PER_GROUP,
        constrain_memory=True, sample_interval_s=3600.0,
        server_config=server_config,
    )
    n_groups = -(-N_SERVERS * server_config.sockets // 8)  # ceil
    single = sim.run(traces[0], policy, faults=_make_schedule(n_groups))
    line("single_cluster", single.fault_stats)

    # Cross-shard replays, both topologies.  N_SERVERS=10 with pool size 8
    # (4 servers/group) leaves spanning group 2 straddling the shard seam.
    shard_sizes = [N_SERVERS, N_SERVERS]
    configs = [server_config, server_config]
    policies = [StaticFractionPolicy(fraction=0.6, seed=SEED)
                for _ in range(2)]
    for scope in ("per_shard", "spanning"):
        topology = getattr(PoolTopology, scope)(
            shard_sizes, server_config.sockets, 8
        )
        results, _ = replay_crossshard(
            traces, policies, shard_sizes, configs, topology,
            POOL_CAPACITY_GB_PER_GROUP, True, 3600.0,
            faults=_make_schedule(topology.n_groups),
        )
        for shard, result in enumerate(results):
            line(f"crossshard_{scope}_shard{shard}", result.fault_stats)

    # Fleet, serial vs process pool: shardwise for_shard routing.
    events: List = []
    for shard in range(2):
        events.extend(_make_schedule(2, shard=shard).events)
    schedule = FaultSchedule(events=tuple(events), migration_retry_budget=1)
    fleet_stats = []
    for workers in (None, 2):
        fleet = FleetSimulator(
            shard_configs=[_make_config(i, server_config) for i in range(2)],
            pool_size_sockets=8,
            pool_capacity_gb_per_group=POOL_CAPACITY_GB_PER_GROUP,
            constrain_memory=True,
            max_workers=workers,
        )
        with fleet:
            result = fleet.run(
                static_policy_factory(fraction=0.6, seed=SEED),
                compute_baseline=False, faults=schedule,
            )
        fleet_stats.append(result.fault_stats.as_dict())
        label = "serial" if workers is None else f"pool{workers}"
        line(f"fleet_{label}", result.fault_stats)
    if fleet_stats[0] != fleet_stats[1]:
        print("FAIL: serial and process-pool fleets disagree",
              file=sys.stderr)
        return 1
    return 0


def main() -> int:
    return run_determinism_check()

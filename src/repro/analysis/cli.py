"""``python -m repro.analysis`` / ``repro-lint``: the analysis front door.

Subcommands::

    lint [paths...]        determinism lint, diffed against the baseline
    pickle-safety          pool-boundary pickle hazards
    contracts              event-ordering contract checker
    check [paths...]       lint + pickle-safety + contracts in one run
    determinism            fault-determinism differential stats (canonical
                           JSONL on stdout; diffed across PYTHONHASHSEED
                           values by CI)
    perf-floors [paths...] BENCH_*.json schema + recorded perf floors
    explain [codes...]     print the rule table (all rules by default)

Exit status is 0 when clean, 1 on findings or failures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.findings import (
    BASELINE_DEFAULT,
    Finding,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)

__all__ = ["main"]


def _print_findings(findings: Sequence[Finding], show_hints: bool) -> None:
    for finding in findings:
        print(finding.format(show_hint=show_hints))
        if finding.snippet:
            print(f"    {finding.snippet}")


def _cmd_lint(args) -> int:
    from repro.analysis.det_rules import lint_paths

    findings = lint_paths(args.paths)
    if args.update_baseline:
        write_baseline(findings, args.baseline)
        print(f"baseline updated: {args.baseline} "
              f"({len(findings)} finding(s))")
        return 0
    baseline = load_baseline(args.baseline)
    new = diff_against_baseline(findings, baseline)
    _print_findings(new, show_hints=not args.no_hints)
    covered = len(findings) - len(new)
    if new:
        print(f"\n{len(new)} new finding(s) "
              f"({covered} covered by baseline {args.baseline})")
        print("fix them, suppress with '# repro: noqa <CODE> -- reason', "
              "or (for accepted debt) --update-baseline")
        return 1
    print(f"clean: 0 new findings ({covered} covered by baseline)")
    return 0


def _cmd_pickle_safety(args) -> int:
    from repro.analysis.pickle_safety import DEFAULT_ROOTS, check_pickle_safety

    roots = tuple(args.root) if args.root else DEFAULT_ROOTS
    findings = check_pickle_safety(args.src, roots=roots)
    _print_findings(findings, show_hints=not args.no_hints)
    if findings:
        print(f"\n{len(findings)} pickle-safety finding(s)")
        return 1
    print(f"clean: {len(roots)} pool-boundary root(s) and their closure "
          "are pickle-safe")
    return 0


def _cmd_contracts(args) -> int:
    from repro.analysis.contracts import check_contracts

    findings = check_contracts(args.simulator, args.pool_topology)
    _print_findings(findings, show_hints=not args.no_hints)
    if findings:
        print(f"\n{len(findings)} contract violation(s)")
        return 1
    print("clean: replay event-ordering contracts hold "
          "(departures -> faults -> sample -> QoS tick -> retries)")
    return 0


def _cmd_check(args) -> int:
    status = _cmd_lint(args)
    args.src = "src"
    args.root = ()
    status = _cmd_pickle_safety(args) or status
    args.simulator = None
    args.pool_topology = None
    status = _cmd_contracts(args) or status
    return status


def _cmd_determinism(args) -> int:
    from repro.analysis.determinism import run_determinism_check

    return run_determinism_check()


def _cmd_perf_floors(args) -> int:
    from repro.analysis.perf_floors import check_reports

    return check_reports(args.paths, require=args.require)


def _cmd_explain(args) -> int:
    from repro.analysis.contracts import ORDER_RULES
    from repro.analysis.det_rules import RULES
    from repro.analysis.pickle_safety import PICKLE_RULES

    table = dict(RULES)
    table.update(PICKLE_RULES)
    table.update(ORDER_RULES)
    table["NOQ001"] = (
        "suppression without codes or a reason",
        "write '# repro: noqa DET00x -- reason'",
    )
    table["NOQ002"] = (
        "suppression matching no finding",
        "the code it excused is gone or moved; delete or move the comment",
    )
    codes = args.codes or sorted(table)
    status = 0
    for code in codes:
        entry = table.get(code.upper())
        if entry is None:
            print(f"{code}: unknown rule code")
            status = 1
            continue
        summary, hint = entry
        print(f"{code.upper()}: {summary}")
        print(f"    {hint}")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-specific static analysis and runtime checks",
    )
    parser.add_argument("--no-hints", action="store_true",
                        help="omit fix-it hints from finding output")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="determinism lint over source trees")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--baseline", default=BASELINE_DEFAULT,
                      help=f"baseline file (default: {BASELINE_DEFAULT})")
    lint.add_argument("--update-baseline", action="store_true",
                      help="accept current findings as the new baseline")
    lint.set_defaults(func=_cmd_lint)

    pickle_cmd = sub.add_parser(
        "pickle-safety", help="pool-boundary pickle hazard pass")
    pickle_cmd.add_argument("--src", default="src",
                            help="source root to scan (default: src)")
    pickle_cmd.add_argument("--root", action="append", default=[],
                            help="dotted root class (repeatable; default: "
                                 "the built-in pool-boundary set)")
    pickle_cmd.set_defaults(func=_cmd_pickle_safety)

    contracts = sub.add_parser(
        "contracts", help="replay event-ordering contract checker")
    contracts.add_argument("--simulator", default=None,
                           help="simulator.py to check (default: the "
                                "installed repro.cluster.simulator)")
    contracts.add_argument("--pool-topology", default=None,
                           help="pool_topology.py to check (default: the "
                                "installed repro.cluster.pool_topology)")
    contracts.set_defaults(func=_cmd_contracts)

    check = sub.add_parser(
        "check", help="lint + pickle-safety + contracts in one run")
    check.add_argument("paths", nargs="*", default=["src"])
    check.add_argument("--baseline", default=BASELINE_DEFAULT)
    check.add_argument("--update-baseline", action="store_true",
                       help=argparse.SUPPRESS)
    check.set_defaults(func=_cmd_check)

    determinism = sub.add_parser(
        "determinism",
        help="fault-determinism differential stats (canonical JSONL)")
    determinism.set_defaults(func=_cmd_determinism)

    floors = sub.add_parser(
        "perf-floors", help="validate BENCH_*.json schema and perf floors")
    floors.add_argument("paths", nargs="*", default=["benchmarks"],
                        help="report files or directories "
                             "(default: benchmarks)")
    floors.add_argument("--require", action="append", default=[],
                        help="benchmark name that must have a report "
                             "(repeatable)")
    floors.set_defaults(func=_cmd_perf_floors)

    explain = sub.add_parser("explain", help="print the rule table")
    explain.add_argument("codes", nargs="*", help="rule codes (default: all)")
    explain.set_defaults(func=_cmd_explain)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

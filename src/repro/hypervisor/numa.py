"""NUMA and zNUMA virtual topologies exposed to guest VMs.

Pond exposes pool memory to a guest as a *zero-core virtual NUMA node*
(zNUMA): a NUMA node that has memory but no CPUs, exactly like Linux's
CPU-less NUMA support.  The hypervisor builds the topology by adding a
``node_memblk`` entry without a matching ``node_cpuid`` entry in the
ACPI SRAT, and publishes the access latency ratio in the SLIT distance
matrix so NUMA-aware guests know the zNUMA node is slower.

This module models that topology: nodes with cores and memory, the distance
matrix, and helpers the guest allocator uses to order allocation targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cxl.latency import LOCAL_DRAM_LATENCY_NS

__all__ = ["NUMANode", "VirtualNUMATopology", "build_vm_topology"]

#: ACPI SLIT encodes the local-node distance as 10; remote distances scale
#: proportionally to relative latency.
SLIT_LOCAL_DISTANCE = 10


@dataclass
class NUMANode:
    """One virtual NUMA node: a set of vCPUs plus a memory block."""

    node_id: int
    cores: int
    memory_gb: float
    latency_ns: float = LOCAL_DRAM_LATENCY_NS

    def __post_init__(self) -> None:
        if self.cores < 0:
            raise ValueError("core count cannot be negative")
        if self.memory_gb < 0:
            raise ValueError("memory cannot be negative")
        if self.latency_ns <= 0:
            raise ValueError("latency must be positive")

    @property
    def is_znuma(self) -> bool:
        """A zNUMA node has memory but zero cores."""
        return self.cores == 0 and self.memory_gb > 0


class VirtualNUMATopology:
    """The NUMA topology a guest observes: nodes plus a SLIT distance matrix."""

    def __init__(self, nodes: Sequence[NUMANode]) -> None:
        if not nodes:
            raise ValueError("a topology needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate NUMA node ids")
        if all(n.cores == 0 for n in nodes):
            raise ValueError("at least one node must have CPUs")
        self.nodes: List[NUMANode] = list(nodes)

    # -- structure ---------------------------------------------------------------
    @property
    def total_memory_gb(self) -> float:
        return sum(n.memory_gb for n in self.nodes)

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self.nodes)

    @property
    def local_nodes(self) -> List[NUMANode]:
        return [n for n in self.nodes if not n.is_znuma]

    @property
    def znuma_nodes(self) -> List[NUMANode]:
        return [n for n in self.nodes if n.is_znuma]

    @property
    def has_znuma(self) -> bool:
        return len(self.znuma_nodes) > 0

    @property
    def znuma_memory_gb(self) -> float:
        return sum(n.memory_gb for n in self.znuma_nodes)

    def node(self, node_id: int) -> NUMANode:
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise KeyError(f"no NUMA node with id {node_id}")

    # -- SLIT distance matrix ------------------------------------------------------
    def slit_matrix(self) -> np.ndarray:
        """ACPI SLIT-style distance matrix derived from node latencies.

        Entry (i, j) is the relative cost of node i's CPUs accessing node j's
        memory, normalised so the local access is 10 (the ACPI convention).
        Zero-core nodes reuse the minimum local latency as their "from" base
        (they never issue accesses, but ACPI still requires a full matrix).
        """
        n = len(self.nodes)
        base = min(node.latency_ns for node in self.local_nodes)
        matrix = np.zeros((n, n), dtype=int)
        for i, src in enumerate(self.nodes):
            for j, dst in enumerate(self.nodes):
                if i == j:
                    matrix[i, j] = SLIT_LOCAL_DISTANCE
                else:
                    ratio = dst.latency_ns / base
                    matrix[i, j] = max(
                        SLIT_LOCAL_DISTANCE + 1, int(round(SLIT_LOCAL_DISTANCE * ratio))
                    )
        return matrix

    def allocation_order(self) -> List[NUMANode]:
        """Nodes in the order a NUMA-aware first-touch allocator prefers them.

        Local (has-CPU) nodes come first ordered by latency, then zNUMA nodes
        by latency -- which is exactly the bias Pond relies on to keep the
        zNUMA node untouched when the local node is sized correctly.
        """
        local = sorted(self.local_nodes, key=lambda n: n.latency_ns)
        znuma = sorted(self.znuma_nodes, key=lambda n: n.latency_ns)
        return local + znuma

    def describe(self) -> str:
        """Human-readable summary resembling ``numactl --hardware`` output."""
        lines = [f"available: {len(self.nodes)} nodes"]
        for n in self.nodes:
            kind = "zNUMA" if n.is_znuma else "local"
            lines.append(
                f"node {n.node_id} ({kind}): cpus={n.cores} mem={n.memory_gb:.1f}GB "
                f"latency={n.latency_ns:.0f}ns"
            )
        return "\n".join(lines)


def build_vm_topology(
    cores: int,
    local_memory_gb: float,
    pool_memory_gb: float,
    pool_latency_ns: Optional[float] = None,
    local_latency_ns: float = LOCAL_DRAM_LATENCY_NS,
) -> VirtualNUMATopology:
    """Build the virtual topology Pond gives a VM.

    All vCPUs and the local memory live on node 0; if any pool memory is
    allocated, it is exposed as zNUMA node 1 with the pool's access latency.
    """
    if cores < 1:
        raise ValueError("a VM needs at least one core")
    if local_memory_gb < 0 or pool_memory_gb < 0:
        raise ValueError("memory sizes cannot be negative")
    if local_memory_gb + pool_memory_gb <= 0:
        raise ValueError("the VM needs some memory")
    nodes = [NUMANode(node_id=0, cores=cores, memory_gb=local_memory_gb,
                      latency_ns=local_latency_ns)]
    if pool_memory_gb > 0:
        latency = pool_latency_ns if pool_latency_ns is not None else 2.0 * local_latency_ns
        nodes.append(
            NUMANode(node_id=1, cores=0, memory_gb=pool_memory_gb, latency_ns=latency)
        )
    return VirtualNUMATopology(nodes)

"""Opaque-VM telemetry: core-PMU (TMA) counters and hypervisor memory counters.

Pond requires two kinds of telemetry that work for opaque VMs (paper
Sections 4.2 and 5):

1. **Core-PMU counters**, summarised by the Top-down Microarchitecture
   Analysis (TMA) method: backend-bound, memory-bound, store-bound and
   DRAM-latency-bound pipeline-slot fractions, plus LLC misses-per-instruction,
   memory bandwidth, and memory parallelism.  These are the features of the
   latency-insensitivity model.  Sampling is cheap: once per second, ~1 ms.
2. **Hypervisor memory counters**: the guest-committed-memory counter (an
   overestimate of used memory, available for 98 % of VMs) and access-bit
   scans from :mod:`repro.hypervisor.page_table`.

:class:`VMTelemetry` aggregates per-VM samples exactly the way the production
pipeline does before they are written to the central training database.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "TMACounters",
    "PMUSample",
    "VMTelemetry",
    "GuestCommittedCounter",
    "TMA_FEATURE_NAMES",
]

#: Canonical feature order used by the latency-insensitivity model.
TMA_FEATURE_NAMES = (
    "backend_bound",
    "memory_bound",
    "store_bound",
    "dram_latency_bound",
    "llc_mpi",
    "memory_bandwidth_gbps",
    "memory_parallelism",
)


@dataclass(frozen=True)
class TMACounters:
    """One snapshot of the TMA pipeline-slot breakdown and memory counters.

    Pipeline-slot fractions are in [0, 1]; ``llc_mpi`` is LLC misses per
    thousand instructions; bandwidth is in GB/s; parallelism is the average
    number of outstanding memory requests (MLP).
    """

    backend_bound: float
    memory_bound: float
    store_bound: float
    dram_latency_bound: float
    llc_mpi: float
    memory_bandwidth_gbps: float
    memory_parallelism: float

    def __post_init__(self) -> None:
        for name in ("backend_bound", "memory_bound", "store_bound", "dram_latency_bound"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.llc_mpi < 0 or self.memory_bandwidth_gbps < 0 or self.memory_parallelism < 0:
            raise ValueError("counter values cannot be negative")
        if self.memory_bound > self.backend_bound + 1e-9:
            raise ValueError("memory_bound cannot exceed backend_bound")
        if self.dram_latency_bound > self.memory_bound + 1e-9:
            raise ValueError("dram_latency_bound cannot exceed memory_bound")

    def as_vector(self) -> np.ndarray:
        """Feature vector in :data:`TMA_FEATURE_NAMES` order."""
        return np.array([getattr(self, name) for name in TMA_FEATURE_NAMES], dtype=float)

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)


@dataclass(frozen=True)
class PMUSample:
    """A timestamped TMA snapshot attributed to one VM."""

    vm_id: str
    time_s: float
    counters: TMACounters
    sample_cost_ms: float = 1.0


class VMTelemetry:
    """Per-VM telemetry aggregation (means/percentiles of counter samples)."""

    def __init__(self, vm_id: str, sample_interval_s: float = 1.0) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.vm_id = vm_id
        self.sample_interval_s = sample_interval_s
        self.samples: List[PMUSample] = []

    def record(self, sample: PMUSample) -> None:
        if sample.vm_id != self.vm_id:
            raise ValueError(
                f"sample belongs to {sample.vm_id!r}, telemetry tracks {self.vm_id!r}"
            )
        self.samples.append(sample)

    def record_counters(self, time_s: float, counters: TMACounters) -> None:
        self.record(PMUSample(vm_id=self.vm_id, time_s=time_s, counters=counters))

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    def feature_matrix(self) -> np.ndarray:
        if not self.samples:
            raise RuntimeError("no telemetry samples recorded")
        return np.vstack([s.counters.as_vector() for s in self.samples])

    def mean_features(self) -> np.ndarray:
        """Mean of each TMA feature over the VM's samples."""
        return self.feature_matrix().mean(axis=0)

    def percentile_features(self, percentiles: Sequence[float] = (50, 90, 99)) -> np.ndarray:
        """Concatenated per-feature percentiles, the richer model input."""
        matrix = self.feature_matrix()
        chunks = [np.percentile(matrix, p, axis=0) for p in percentiles]
        return np.concatenate(chunks)

    def overhead_fraction(self, sample_cost_ms: float = 1.0) -> float:
        """Telemetry overhead: 1 ms per 1 s sample => 0.1 %."""
        return (sample_cost_ms / 1000.0) / self.sample_interval_s


class GuestCommittedCounter:
    """Hypervisor counter tracking guest-committed memory over time.

    Guest-committed memory overestimates the truly used memory, so it gives a
    conservative (lower) bound on untouched memory; Pond combines it with
    access-bit scans.  The counter is available for 98 % of VMs.
    """

    AVAILABILITY = 0.98

    def __init__(self, vm_memory_gb: float) -> None:
        if vm_memory_gb <= 0:
            raise ValueError("VM memory must be positive")
        self.vm_memory_gb = vm_memory_gb
        self._history: List[tuple] = []  # (time_s, committed_gb)

    def record(self, time_s: float, committed_gb: float) -> None:
        if committed_gb < 0:
            raise ValueError("committed memory cannot be negative")
        committed_gb = min(committed_gb, self.vm_memory_gb)
        self._history.append((time_s, committed_gb))

    @property
    def peak_committed_gb(self) -> float:
        if not self._history:
            return 0.0
        return max(c for _, c in self._history)

    def untouched_estimate_gb(self) -> float:
        """Conservative untouched estimate: total minus peak committed."""
        return max(0.0, self.vm_memory_gb - self.peak_committed_gb)

    def untouched_estimate_fraction(self) -> float:
        return self.untouched_estimate_gb() / self.vm_memory_gb

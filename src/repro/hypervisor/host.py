"""Host hypervisor model: local DRAM, pool slices, memory partitions, VMs.

A :class:`Host` corresponds to one server (one or two CPU sockets) running
Azure's hypervisor with Pond support:

* Local DRAM is preallocated to VMs on the same NUMA node as their cores.
* Pool memory arrives as 1 GB slices onlined by the Pool Manager; it lives in
  a *hypervisor-only memory partition* so host agents and drivers cannot
  fragment it (paper Section 4.2).
* VMs are placed with a local/pool split decided by the control plane and see
  the pool portion as a zNUMA node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hypervisor.vm import VMInstance, VMRequest
from repro.hypervisor.numa import VirtualNUMATopology, build_vm_topology

__all__ = ["Host", "MemoryPartition", "HostCapacityError"]


class HostCapacityError(RuntimeError):
    """Raised when a VM cannot be placed because a resource is exhausted."""


@dataclass
class MemoryPartition:
    """A named partition of host memory with simple allocation accounting.

    Pond uses a hypervisor-only partition for pool slices so that host agents
    (which allocate from the host-local partition) cannot fragment the 1 GB
    ranges that must later be offlined contiguously.
    """

    name: str
    capacity_gb: float
    allocated_gb: float = 0.0
    hypervisor_only: bool = False

    def __post_init__(self) -> None:
        if self.capacity_gb < 0:
            raise ValueError("capacity cannot be negative")
        if self.allocated_gb < 0 or self.allocated_gb > self.capacity_gb + 1e-9:
            raise ValueError("allocated memory out of range")

    @property
    def free_gb(self) -> float:
        return max(0.0, self.capacity_gb - self.allocated_gb)

    def allocate(self, size_gb: float) -> None:
        if size_gb < 0:
            raise ValueError("allocation cannot be negative")
        if size_gb > self.free_gb + 1e-9:
            raise HostCapacityError(
                f"partition {self.name!r}: requested {size_gb:.1f} GB, free {self.free_gb:.1f} GB"
            )
        self.allocated_gb += size_gb

    def release(self, size_gb: float) -> None:
        if size_gb < 0:
            raise ValueError("release cannot be negative")
        if size_gb > self.allocated_gb + 1e-9:
            raise ValueError("cannot release more than is allocated")
        self.allocated_gb = max(0.0, self.allocated_gb - size_gb)

    def grow(self, size_gb: float) -> None:
        if size_gb < 0:
            raise ValueError("growth cannot be negative")
        self.capacity_gb += size_gb

    def shrink(self, size_gb: float) -> None:
        if size_gb < 0:
            raise ValueError("shrink cannot be negative")
        if self.capacity_gb - size_gb < self.allocated_gb - 1e-9:
            raise HostCapacityError(
                f"partition {self.name!r}: cannot shrink below allocated memory"
            )
        self.capacity_gb = max(0.0, self.capacity_gb - size_gb)


class Host:
    """One server: cores, local DRAM, an (initially empty) pool partition, VMs."""

    def __init__(
        self,
        host_id: str,
        total_cores: int,
        local_memory_gb: float,
        pool_latency_ns: Optional[float] = None,
        host_reserved_gb: float = 0.0,
    ) -> None:
        if total_cores < 1:
            raise ValueError("a host needs at least one core")
        if local_memory_gb <= 0:
            raise ValueError("a host needs local memory")
        if not 0 <= host_reserved_gb < local_memory_gb:
            raise ValueError("host reservation must be within local memory")
        self.host_id = host_id
        self.total_cores = total_cores
        self.pool_latency_ns = pool_latency_ns
        self.local_partition = MemoryPartition(
            name="host-local", capacity_gb=local_memory_gb - host_reserved_gb
        )
        self.host_reserved = MemoryPartition(
            name="host-reserved", capacity_gb=host_reserved_gb,
            allocated_gb=host_reserved_gb,
        )
        self.pool_partition = MemoryPartition(
            name="pool", capacity_gb=0.0, hypervisor_only=True
        )
        self.vms: Dict[str, VMInstance] = {}
        self.used_cores = 0

    # -- pool slice plumbing (driven by the Pool Manager) ----------------------
    def online_pool_memory(self, size_gb: float) -> None:
        """Add onlined pool slices to the hypervisor-only partition."""
        self.pool_partition.grow(size_gb)

    def offline_pool_memory(self, size_gb: float) -> None:
        """Remove (offline) unallocated pool slices for return to the pool."""
        self.pool_partition.shrink(size_gb)

    # -- capacity queries ---------------------------------------------------------
    @property
    def free_cores(self) -> int:
        return self.total_cores - self.used_cores

    @property
    def free_local_gb(self) -> float:
        return self.local_partition.free_gb

    @property
    def free_pool_gb(self) -> float:
        return self.pool_partition.free_gb

    @property
    def total_local_gb(self) -> float:
        return self.local_partition.capacity_gb + self.host_reserved.capacity_gb

    @property
    def stranded_memory_gb(self) -> float:
        """Local memory that cannot be rented because all cores are in use."""
        if self.free_cores > 0:
            return 0.0
        return self.free_local_gb

    def can_place(self, request: VMRequest, local_gb: float, pool_gb: float) -> bool:
        if abs(local_gb + pool_gb - request.memory_gb) > 1e-6:
            return False
        return (
            request.cores <= self.free_cores
            and local_gb <= self.free_local_gb + 1e-9
            and pool_gb <= self.free_pool_gb + 1e-9
        )

    # -- VM lifecycle -----------------------------------------------------------
    def place_vm(
        self,
        request: VMRequest,
        local_gb: float,
        pool_gb: float,
        start_time_s: float = 0.0,
    ) -> VMInstance:
        """Place a VM with the given local/pool split; raises if it does not fit."""
        if local_gb < 0 or pool_gb < 0:
            raise ValueError("memory split cannot be negative")
        if not self.can_place(request, local_gb, pool_gb):
            raise HostCapacityError(
                f"host {self.host_id}: cannot place VM {request.vm_id} "
                f"(cores {request.cores}/{self.free_cores}, local {local_gb:.1f}/"
                f"{self.free_local_gb:.1f} GB, pool {pool_gb:.1f}/{self.free_pool_gb:.1f} GB)"
            )
        self.local_partition.allocate(local_gb)
        self.pool_partition.allocate(pool_gb)
        self.used_cores += request.cores
        vm = VMInstance(
            request=request,
            host_id=self.host_id,
            local_memory_gb=local_gb,
            pool_memory_gb=pool_gb,
            start_time_s=start_time_s,
        )
        self.vms[request.vm_id] = vm
        return vm

    def terminate_vm(self, vm_id: str, time_s: float) -> VMInstance:
        """Terminate a VM and release its memory and cores.

        Pool memory is released back into the host's pool partition as *free*
        capacity; the Pool Manager asynchronously offlines it later.
        """
        vm = self.vms.pop(vm_id, None)
        if vm is None:
            raise KeyError(f"host {self.host_id} has no VM {vm_id!r}")
        vm.terminate(time_s)
        self.local_partition.release(vm.local_memory_gb)
        self.pool_partition.release(vm.pool_memory_gb)
        self.used_cores -= vm.request.cores
        return vm

    def mitigate_vm(self, vm_id: str) -> float:
        """Move a VM entirely to local memory (QoS mitigation).

        Returns the migration time in seconds; raises if there is not enough
        free local memory for the one-time correction.
        """
        vm = self.vms.get(vm_id)
        if vm is None:
            raise KeyError(f"host {self.host_id} has no VM {vm_id!r}")
        needed = vm.pool_memory_gb
        if needed > self.free_local_gb + 1e-9:
            raise HostCapacityError(
                f"host {self.host_id}: not enough local memory to mitigate VM {vm_id}"
            )
        self.local_partition.allocate(needed)
        self.pool_partition.release(needed)
        return vm.migrate_to_local()

    def vm_topology(self, vm_id: str) -> VirtualNUMATopology:
        """Virtual NUMA topology (with zNUMA if applicable) for a placed VM."""
        vm = self.vms.get(vm_id)
        if vm is None:
            raise KeyError(f"host {self.host_id} has no VM {vm_id!r}")
        return build_vm_topology(
            cores=vm.request.cores,
            local_memory_gb=vm.local_memory_gb,
            pool_memory_gb=vm.pool_memory_gb,
            pool_latency_ns=self.pool_latency_ns,
        )

    def summary(self) -> Dict[str, float]:
        return {
            "total_cores": float(self.total_cores),
            "used_cores": float(self.used_cores),
            "local_gb": self.local_partition.capacity_gb,
            "local_free_gb": self.free_local_gb,
            "pool_gb": self.pool_partition.capacity_gb,
            "pool_free_gb": self.free_pool_gb,
            "stranded_gb": self.stranded_memory_gb,
            "n_vms": float(len(self.vms)),
        }

"""Hypervisor (second-level) page tables with access bits.

Pond labels untouched memory by scanning access bits in the hypervisor page
tables: "We scan and reset access bits every 30 minutes, which takes 10s"
(paper Section 5).  Because Pond only needs *untouched* pages, the bits do
not need to be reset frequently -- a page whose bit has never been set since
VM start is untouched.

The model here tracks per-page access bits at a configurable page size and
provides the scanner that produces the untouched-memory labels used to train
the GBM model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["HypervisorPageTable", "AccessBitScanner", "ScanResult"]

#: Default page granularity for access-bit tracking (2 MB large pages).
DEFAULT_PAGE_MB = 2.0


class HypervisorPageTable:
    """Second-level address translation table for one VM.

    Pages are indexed 0..n_pages-1 over the VM's guest-physical space; the
    mapping of pages onto local vs pool memory follows the zNUMA split (local
    pages first, pool pages after), matching how the hypervisor backs the
    guest address space.
    """

    def __init__(self, vm_memory_gb: float, local_memory_gb: float,
                 page_mb: float = DEFAULT_PAGE_MB) -> None:
        if vm_memory_gb <= 0:
            raise ValueError("VM memory must be positive")
        if not 0 <= local_memory_gb <= vm_memory_gb + 1e-9:
            raise ValueError("local memory must be within [0, vm_memory_gb]")
        if page_mb <= 0:
            raise ValueError("page size must be positive")
        self.page_mb = page_mb
        self.n_pages = max(1, int(round(vm_memory_gb * 1024 / page_mb)))
        self.n_local_pages = min(
            self.n_pages, int(round(local_memory_gb * 1024 / page_mb))
        )
        self._access_bits = np.zeros(self.n_pages, dtype=bool)
        self._ever_accessed = np.zeros(self.n_pages, dtype=bool)

    # -- page classification -----------------------------------------------------
    def is_pool_page(self, page_index: int) -> bool:
        self._check_page(page_index)
        return page_index >= self.n_local_pages

    @property
    def vm_memory_gb(self) -> float:
        return self.n_pages * self.page_mb / 1024.0

    @property
    def local_memory_gb(self) -> float:
        return self.n_local_pages * self.page_mb / 1024.0

    @property
    def pool_memory_gb(self) -> float:
        return (self.n_pages - self.n_local_pages) * self.page_mb / 1024.0

    # -- access recording ---------------------------------------------------------
    def touch(self, page_index: int) -> None:
        """Record a guest access to a page (sets the access bit)."""
        self._check_page(page_index)
        self._access_bits[page_index] = True
        self._ever_accessed[page_index] = True

    def touch_range(self, start_page: int, n_pages: int) -> None:
        if n_pages < 0:
            raise ValueError("n_pages cannot be negative")
        if n_pages == 0:
            return
        self._check_page(start_page)
        end = start_page + n_pages
        if end > self.n_pages:
            raise IndexError("touch range exceeds the page table")
        self._access_bits[start_page:end] = True
        self._ever_accessed[start_page:end] = True

    def touch_gb(self, touched_gb: float) -> None:
        """Touch the first ``touched_gb`` of guest memory (first-touch order)."""
        if touched_gb < 0:
            raise ValueError("touched_gb cannot be negative")
        pages = min(self.n_pages, int(round(touched_gb * 1024 / self.page_mb)))
        if pages > 0:
            self.touch_range(0, pages)

    def _check_page(self, page_index: int) -> None:
        if not 0 <= page_index < self.n_pages:
            raise IndexError(f"page {page_index} out of range 0..{self.n_pages - 1}")

    # -- queries ----------------------------------------------------------------
    @property
    def accessed_pages(self) -> int:
        return int(self._access_bits.sum())

    @property
    def ever_accessed_pages(self) -> int:
        return int(self._ever_accessed.sum())

    @property
    def untouched_pages(self) -> int:
        return self.n_pages - self.ever_accessed_pages

    @property
    def untouched_gb(self) -> float:
        return self.untouched_pages * self.page_mb / 1024.0

    @property
    def untouched_fraction(self) -> float:
        return self.untouched_pages / self.n_pages

    def reset_access_bits(self) -> None:
        """Clear the (volatile) access bits; the ever-accessed record persists."""
        self._access_bits[:] = False


@dataclass
class ScanResult:
    """Outcome of one access-bit scan of a VM's page table."""

    scan_time_s: float
    accessed_pages: int
    untouched_pages: int
    untouched_gb: float
    untouched_fraction: float


class AccessBitScanner:
    """Periodic access-bit scanner (default: every 30 minutes, 10 s per scan)."""

    def __init__(self, interval_s: float = 1800.0, scan_duration_s: float = 10.0,
                 reset_bits: bool = False) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        if scan_duration_s < 0:
            raise ValueError("scan duration cannot be negative")
        self.interval_s = interval_s
        self.scan_duration_s = scan_duration_s
        self.reset_bits = reset_bits
        self.history: List[ScanResult] = []

    def scan(self, table: HypervisorPageTable, now_s: float) -> ScanResult:
        """Scan one page table and record the result."""
        result = ScanResult(
            scan_time_s=now_s,
            accessed_pages=table.accessed_pages,
            untouched_pages=table.untouched_pages,
            untouched_gb=table.untouched_gb,
            untouched_fraction=table.untouched_fraction,
        )
        if self.reset_bits:
            table.reset_access_bits()
        self.history.append(result)
        return result

    def minimum_untouched_fraction(self) -> Optional[float]:
        """Label used for model training: the minimum untouched fraction seen.

        The untouched-memory model is trained on "the minimum untouched memory
        over each VM's lifetime" (paper Figure 14).
        """
        if not self.history:
            return None
        return min(r.untouched_fraction for r in self.history)

    def overhead_fraction(self) -> float:
        """Fraction of wall-clock time spent scanning (10 s / 30 min by default)."""
        return self.scan_duration_s / self.interval_s

"""Timing model for onlining/offlining 1 GB pool-memory slices.

The paper's empirical observations (Section 4.2):

* **offlining** a 1 GB slice takes 10-100 milliseconds per GB (the host must
  drain and unmap the range), and
* **onlining** is near-instantaneous, microseconds per GB.

These asymmetries are the reason Pond keeps a buffer of unallocated pool
memory and releases slices asynchronously after VM departure instead of on
the critical path of VM starts.  The model exposes both per-slice transition
times and the derived effective offlining bandwidth (GB/s) used to validate
Finding 10 (offlining stays below 1 GB/s for 99.99 % of VM starts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["SliceTransitionModel", "TransitionRecord"]


@dataclass(frozen=True)
class TransitionRecord:
    """One slice online/offline transition with its simulated duration."""

    kind: str           # "online" or "offline"
    slice_count: int
    duration_s: float

    @property
    def gb_per_second(self) -> float:
        if self.duration_s <= 0:
            return float("inf")
        return self.slice_count / self.duration_s


class SliceTransitionModel:
    """Samples online/offline durations for batches of 1 GB slices."""

    def __init__(
        self,
        offline_ms_per_gb_range: Sequence[float] = (10.0, 100.0),
        online_us_per_gb_range: Sequence[float] = (1.0, 10.0),
        seed: int = 0,
    ) -> None:
        lo, hi = offline_ms_per_gb_range
        if lo <= 0 or hi < lo:
            raise ValueError("invalid offline latency range")
        ulo, uhi = online_us_per_gb_range
        if ulo <= 0 or uhi < ulo:
            raise ValueError("invalid online latency range")
        self.offline_ms_per_gb_range = (float(lo), float(hi))
        self.online_us_per_gb_range = (float(ulo), float(uhi))
        self._rng = np.random.default_rng(seed)
        self.records: List[TransitionRecord] = []

    # -- sampling -------------------------------------------------------------
    def offline_slices(self, n_slices: int) -> TransitionRecord:
        """Simulate offlining ``n_slices`` 1 GB slices; returns the record."""
        if n_slices < 0:
            raise ValueError("slice count cannot be negative")
        lo, hi = self.offline_ms_per_gb_range
        per_gb_ms = self._rng.uniform(lo, hi, size=max(n_slices, 1))
        duration_s = float(per_gb_ms[:n_slices].sum()) / 1000.0 if n_slices else 0.0
        record = TransitionRecord(kind="offline", slice_count=n_slices, duration_s=duration_s)
        self.records.append(record)
        return record

    def online_slices(self, n_slices: int) -> TransitionRecord:
        """Simulate onlining ``n_slices`` 1 GB slices (microseconds per GB)."""
        if n_slices < 0:
            raise ValueError("slice count cannot be negative")
        ulo, uhi = self.online_us_per_gb_range
        per_gb_us = self._rng.uniform(ulo, uhi, size=max(n_slices, 1))
        duration_s = float(per_gb_us[:n_slices].sum()) / 1e6 if n_slices else 0.0
        record = TransitionRecord(kind="online", slice_count=n_slices, duration_s=duration_s)
        self.records.append(record)
        return record

    # -- analysis ---------------------------------------------------------------
    def offline_records(self) -> List[TransitionRecord]:
        return [r for r in self.records if r.kind == "offline" and r.slice_count > 0]

    def offline_speed_percentile(self, percentile: float) -> float:
        """GB/s offlining speed at the requested percentile across records."""
        records = self.offline_records()
        if not records:
            raise RuntimeError("no offline transitions recorded")
        speeds = np.array([r.gb_per_second for r in records])
        return float(np.percentile(speeds, percentile))

    def required_buffer_gb(self, vm_start_rate_per_s: float, mean_pool_gb_per_vm: float) -> float:
        """Pool-memory buffer needed so VM starts never wait on offlining.

        Offlining runs asynchronously at roughly the mean offline bandwidth;
        the buffer must cover the demand that arrives while reclamation is in
        flight.
        """
        if vm_start_rate_per_s < 0 or mean_pool_gb_per_vm < 0:
            raise ValueError("rates cannot be negative")
        lo, hi = self.offline_ms_per_gb_range
        mean_offline_s_per_gb = (lo + hi) / 2.0 / 1000.0
        demand_gb_per_s = vm_start_rate_per_s * mean_pool_gb_per_vm
        # Demand accumulated over the time it takes to reclaim one VM's worth.
        return demand_gb_per_s * mean_offline_s_per_gb * max(mean_pool_gb_per_vm, 1.0)

"""Guest-OS memory allocation behaviour on (z)NUMA topologies.

The zNUMA insight (paper Sections 4.2 and 6.2) is that an unmodified guest OS
preferentially allocates from NUMA nodes that have CPUs before touching a
CPU-less node.  If the local node is sized to the VM's actual working set,
the zNUMA (pool) node stays effectively untouched -- the paper measures
0.06-0.38 % of accesses landing on it, attributed mostly to per-node kernel
metadata that Linux allocates on every node.

:class:`GuestMemoryAllocator` models first-touch allocation over a
:class:`~repro.hypervisor.numa.VirtualNUMATopology`, and
:class:`AccessProfile` summarises where a workload's accesses land given its
working-set size, which feeds the Figure 15/16 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hypervisor.numa import NUMANode, VirtualNUMATopology

__all__ = ["GuestMemoryAllocator", "AccessProfile", "KERNEL_METADATA_FRACTION"]

#: Fraction of a node's memory the guest kernel touches as per-node metadata
#: (page structs, per-node slabs).  This is what produces the small residual
#: zNUMA traffic the paper measures even with perfect predictions.
KERNEL_METADATA_FRACTION = 0.002


@dataclass
class AccessProfile:
    """Where a workload's memory accesses land, per NUMA node."""

    allocated_gb: Dict[int, float] = field(default_factory=dict)
    accesses: Dict[int, float] = field(default_factory=dict)

    @property
    def total_accesses(self) -> float:
        return sum(self.accesses.values())

    def traffic_fraction(self, node_id: int) -> float:
        """Fraction of all accesses that hit ``node_id`` (0..1)."""
        total = self.total_accesses
        if total <= 0:
            return 0.0
        return self.accesses.get(node_id, 0.0) / total

    def znuma_traffic_fraction(self, topology: VirtualNUMATopology) -> float:
        return sum(self.traffic_fraction(n.node_id) for n in topology.znuma_nodes)


class GuestMemoryAllocator:
    """First-touch allocation over a virtual NUMA topology.

    The allocator fills nodes in :meth:`VirtualNUMATopology.allocation_order`,
    i.e. local nodes before zNUMA nodes, matching Linux's default policy for
    CPU-less nodes.  Kernel metadata is pinned on every node up front.
    """

    def __init__(self, topology: VirtualNUMATopology,
                 kernel_metadata_fraction: float = KERNEL_METADATA_FRACTION) -> None:
        if not 0.0 <= kernel_metadata_fraction < 1.0:
            raise ValueError("kernel_metadata_fraction must be in [0, 1)")
        self.topology = topology
        self.kernel_metadata_fraction = kernel_metadata_fraction
        self._allocated: Dict[int, float] = {}
        self._kernel: Dict[int, float] = {}
        for node in topology.nodes:
            kernel_gb = node.memory_gb * kernel_metadata_fraction
            self._kernel[node.node_id] = kernel_gb
            self._allocated[node.node_id] = kernel_gb

    # -- allocation ---------------------------------------------------------------
    def allocate(self, size_gb: float) -> Dict[int, float]:
        """Allocate ``size_gb`` of guest memory, preferring local nodes.

        Returns a mapping node_id -> GB taken from that node.  Raises
        ``MemoryError`` if the topology cannot satisfy the request.
        """
        if size_gb < 0:
            raise ValueError("allocation size cannot be negative")
        remaining = size_gb
        placement: Dict[int, float] = {}
        for node in self.topology.allocation_order():
            if remaining <= 1e-12:
                break
            free = self.free_gb(node.node_id)
            take = min(free, remaining)
            if take > 0:
                placement[node.node_id] = placement.get(node.node_id, 0.0) + take
                self._allocated[node.node_id] += take
                remaining -= take
        if remaining > 1e-9:
            raise MemoryError(
                f"guest out of memory: {remaining:.3f} GB could not be allocated"
            )
        return placement

    def free(self, node_id: int, size_gb: float) -> None:
        if size_gb < 0:
            raise ValueError("free size cannot be negative")
        current = self._allocated.get(node_id)
        if current is None:
            raise KeyError(f"unknown NUMA node {node_id}")
        floor = self._kernel[node_id]
        if current - size_gb < floor - 1e-9:
            raise ValueError("cannot free below the kernel-metadata floor")
        self._allocated[node_id] = max(floor, current - size_gb)

    # -- accounting ---------------------------------------------------------------
    def allocated_gb(self, node_id: int) -> float:
        return self._allocated[node_id]

    def free_gb(self, node_id: int) -> float:
        node = self.topology.node(node_id)
        return max(0.0, node.memory_gb - self._allocated[node_id])

    def total_allocated_gb(self) -> float:
        return sum(self._allocated.values())

    def znuma_allocated_gb(self) -> float:
        return sum(
            self._allocated[n.node_id] - self._kernel[n.node_id]
            for n in self.topology.znuma_nodes
        )

    # -- access modelling ------------------------------------------------------------
    def run_workload(
        self,
        working_set_gb: float,
        kernel_access_weight: float = 1.0,
    ) -> AccessProfile:
        """Allocate and "run" a workload with the given working set.

        The access profile assumes accesses are uniform over the touched
        working set, plus a small stream of kernel-metadata accesses to every
        node weighted by ``kernel_access_weight`` -- this reproduces the tiny
        but non-zero zNUMA traffic the paper measures (Figure 15).
        """
        placement = self.allocate(working_set_gb)
        profile = AccessProfile()
        for node_id, gb in placement.items():
            profile.allocated_gb[node_id] = gb
            profile.accesses[node_id] = gb
        for node in self.topology.nodes:
            kernel_gb = self._kernel[node.node_id] * kernel_access_weight
            if kernel_gb > 0:
                profile.accesses[node.node_id] = (
                    profile.accesses.get(node.node_id, 0.0) + kernel_gb
                )
        return profile

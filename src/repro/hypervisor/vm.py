"""VM request and VM instance descriptors.

A :class:`VMRequest` captures what the cloud control plane knows *before*
placement: core count, memory size, and the opaque-VM metadata Pond's
untouched-memory model consumes (customer id, VM type, guest OS, region,
workload name when available).  A :class:`VMInstance` is a placed VM with its
local/pool memory split and lifetime bookkeeping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["VMRequest", "VMInstance"]

_vm_counter = itertools.count()


@dataclass
class VMRequest:
    """An incoming VM allocation request with its scheduling-time metadata."""

    vm_id: str
    cores: int
    memory_gb: float
    customer_id: str = "anonymous"
    vm_type: str = "general"
    guest_os: str = "linux"
    region: str = "region-0"
    availability_zone: str = "az-0"
    workload_name: Optional[str] = None
    lifetime_hours: float = 1.0
    arrival_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("a VM needs at least one core")
        if self.memory_gb <= 0:
            raise ValueError("a VM needs positive memory")
        if self.lifetime_hours <= 0:
            raise ValueError("lifetime must be positive")

    @classmethod
    def create(cls, cores: int, memory_gb: float, **kwargs) -> "VMRequest":
        """Create a request with an auto-generated id."""
        return cls(vm_id=f"vm-{next(_vm_counter)}", cores=cores, memory_gb=memory_gb, **kwargs)

    @property
    def memory_per_core_gb(self) -> float:
        return self.memory_gb / self.cores

    def metadata(self) -> Dict[str, str]:
        """Metadata dictionary used as features by the untouched-memory model."""
        return {
            "customer_id": self.customer_id,
            "vm_type": self.vm_type,
            "guest_os": self.guest_os,
            "region": self.region,
            "availability_zone": self.availability_zone,
            "workload_name": self.workload_name or "",
        }


@dataclass
class VMInstance:
    """A running VM with its local/pool memory split.

    ``pool_memory_gb`` is the zNUMA node size; ``local_memory_gb`` is what was
    preallocated on the host's NUMA-local DRAM.  ``touched_memory_gb`` is
    updated from telemetry over the VM's lifetime.
    """

    request: VMRequest
    host_id: str
    local_memory_gb: float
    pool_memory_gb: float
    start_time_s: float = 0.0
    end_time_s: Optional[float] = None
    touched_memory_gb: float = 0.0
    mitigated: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.local_memory_gb < 0 or self.pool_memory_gb < 0:
            raise ValueError("memory allocations cannot be negative")
        total = self.local_memory_gb + self.pool_memory_gb
        if abs(total - self.request.memory_gb) > 1e-6:
            raise ValueError(
                f"local ({self.local_memory_gb}) + pool ({self.pool_memory_gb}) must equal "
                f"the requested memory ({self.request.memory_gb})"
            )

    @property
    def vm_id(self) -> str:
        return self.request.vm_id

    @property
    def total_memory_gb(self) -> float:
        return self.local_memory_gb + self.pool_memory_gb

    @property
    def pool_fraction(self) -> float:
        """Fraction of the VM's memory placed on the pool (0..1)."""
        return self.pool_memory_gb / self.total_memory_gb

    @property
    def untouched_memory_gb(self) -> float:
        return max(0.0, self.total_memory_gb - self.touched_memory_gb)

    @property
    def spilled_gb(self) -> float:
        """How much of the *touched* working set spilled onto the pool.

        The guest OS fills local memory first, so spill only occurs once the
        touched working set exceeds the local allocation.
        """
        return max(0.0, self.touched_memory_gb - self.local_memory_gb)

    @property
    def is_running(self) -> bool:
        return self.end_time_s is None

    def record_touch(self, touched_gb: float) -> None:
        """Update the high-water mark of touched guest memory."""
        if touched_gb < 0:
            raise ValueError("touched memory cannot be negative")
        self.touched_memory_gb = min(
            self.total_memory_gb, max(self.touched_memory_gb, touched_gb)
        )

    def terminate(self, time_s: float) -> None:
        if self.end_time_s is not None:
            raise RuntimeError(f"VM {self.vm_id} already terminated")
        if time_s < self.start_time_s:
            raise ValueError("termination time precedes start time")
        self.end_time_s = time_s

    def migrate_to_local(self) -> float:
        """One-time mitigation: move all pool memory to local DRAM.

        Returns the migration time in seconds (the paper reports ~50 ms per GB
        of pool memory copied while virtualization acceleration is disabled).
        """
        moved_gb = self.pool_memory_gb
        self.local_memory_gb += moved_gb
        self.pool_memory_gb = 0.0
        self.mitigated = True
        return 0.050 * moved_gb

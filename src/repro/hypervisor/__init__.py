"""Hypervisor and system-software layer (paper Section 4.2).

This package models the host-side pieces of Pond:

* :mod:`repro.hypervisor.vm` -- VM descriptors (cores, memory, metadata).
* :mod:`repro.hypervisor.numa` -- NUMA and zero-core zNUMA virtual topologies,
  including the SLIT-style distance matrix exposed to guests.
* :mod:`repro.hypervisor.guest_os` -- a guest-OS memory allocator that
  preferentially fills the local vNUMA node before spilling to zNUMA.
* :mod:`repro.hypervisor.page_table` -- hypervisor (second-level) page tables
  with access bits and periodic access-bit scanning.
* :mod:`repro.hypervisor.telemetry` -- core-PMU / TMA counter samples and the
  guest-committed-memory counter used to label untouched memory.
* :mod:`repro.hypervisor.slices` -- 1 GB slice online/offline timing model.
* :mod:`repro.hypervisor.host` -- a host hypervisor combining local DRAM,
  pool slices, memory partitions, and running VMs.
"""

from repro.hypervisor.vm import VMInstance, VMRequest
from repro.hypervisor.numa import NUMANode, VirtualNUMATopology, build_vm_topology
from repro.hypervisor.guest_os import GuestMemoryAllocator, AccessProfile
from repro.hypervisor.page_table import HypervisorPageTable, AccessBitScanner
from repro.hypervisor.telemetry import (
    TMACounters,
    PMUSample,
    VMTelemetry,
    GuestCommittedCounter,
)
from repro.hypervisor.slices import SliceTransitionModel
from repro.hypervisor.host import Host, MemoryPartition

__all__ = [
    "VMInstance",
    "VMRequest",
    "NUMANode",
    "VirtualNUMATopology",
    "build_vm_topology",
    "GuestMemoryAllocator",
    "AccessProfile",
    "HypervisorPageTable",
    "AccessBitScanner",
    "TMACounters",
    "PMUSample",
    "VMTelemetry",
    "GuestCommittedCounter",
    "SliceTransitionModel",
    "Host",
    "MemoryPartition",
]

"""Tests for the Pool Manager, Pond scheduler, QoS monitor, and mitigation manager."""

import pytest

from repro.core.config import PondConfig
from repro.core.control_plane.mitigation import MitigationManager
from repro.core.control_plane.pool_manager import PoolManager, PoolManagerError
from repro.core.control_plane.qos_monitor import QoSMonitor, QoSVerdict
from repro.core.control_plane.scheduler import PondScheduler
from repro.cxl.emc import EMCDevice
from repro.hypervisor.host import Host, HostCapacityError
from repro.hypervisor.slices import SliceTransitionModel
from repro.hypervisor.vm import VMRequest


def make_host(host_id="h1", cores=48, memory_gb=384.0):
    return Host(host_id=host_id, total_cores=cores, local_memory_gb=memory_gb,
                pool_latency_ns=180.0)


def make_pool_manager(capacity_gb=128, n_hosts=2):
    emc = EMCDevice("emc", capacity_gb=capacity_gb, n_ports=max(4, n_hosts))
    manager = PoolManager(emc, transition_model=SliceTransitionModel(seed=0))
    hosts = [make_host(f"h{i}") for i in range(n_hosts)]
    for host in hosts:
        manager.register_host(host)
    return manager, hosts


class TestPoolManager:
    def test_add_and_release_capacity(self):
        manager, hosts = make_pool_manager()
        host = hosts[0]
        manager.add_capacity(host.host_id, 16)
        assert host.pool_partition.capacity_gb == pytest.approx(16.0)
        assert manager.host_pool_gb(host.host_id) == 16
        manager.release_capacity(host.host_id, 8)
        assert host.pool_partition.capacity_gb == pytest.approx(8.0)
        assert manager.unassigned_pool_gb == 128 - 8

    def test_cannot_release_allocated_slices(self):
        manager, hosts = make_pool_manager()
        host = hosts[0]
        manager.add_capacity(host.host_id, 8)
        request = VMRequest.create(cores=4, memory_gb=16.0)
        host.place_vm(request, local_gb=8.0, pool_gb=8.0)
        with pytest.raises(PoolManagerError):
            manager.release_capacity(host.host_id, 8)

    def test_pool_exhaustion_raises(self):
        manager, hosts = make_pool_manager(capacity_gb=8)
        with pytest.raises(PoolManagerError):
            manager.add_capacity(hosts[0].host_id, 16)

    def test_asynchronous_release_queue(self):
        manager, hosts = make_pool_manager()
        host = hosts[0]
        manager.add_capacity(host.host_id, 12)
        manager.queue_release(host.host_id, 12, now_s=0.0)
        assert manager.pending_release_slices == 12
        manager.process_releases()
        assert manager.pending_release_slices == 0
        assert manager.unassigned_pool_gb == 128

    def test_ensure_buffer_tops_up(self):
        manager, hosts = make_pool_manager()
        host = hosts[0]
        added = manager.ensure_buffer(host.host_id, buffer_slices=8)
        assert added == 8
        assert manager.ensure_buffer(host.host_id, buffer_slices=8) == 0

    def test_unknown_host_rejected(self):
        manager, _ = make_pool_manager()
        with pytest.raises(PoolManagerError):
            manager.add_capacity("ghost", 1)

    def test_unregister_returns_capacity(self):
        manager, hosts = make_pool_manager()
        manager.add_capacity(hosts[0].host_id, 10)
        manager.unregister_host(hosts[0].host_id)
        assert manager.unassigned_pool_gb == 128
        with pytest.raises(PoolManagerError):
            manager.unregister_host(hosts[0].host_id)

    def test_duplicate_registration_rejected(self):
        manager, hosts = make_pool_manager()
        with pytest.raises(PoolManagerError):
            manager.register_host(hosts[0])


def always_insensitive(request):
    return True


def never_history(request):
    return None


def sensitive_with_history(request):
    return False


class TestPondScheduler:
    def make_scheduler(self, insens, untouched_gb, config=None):
        config = config or PondConfig()
        manager, hosts = make_pool_manager(capacity_gb=256)
        scheduler = PondScheduler(
            config=config,
            pool_manager=manager,
            insensitivity_predictor=insens,
            untouched_predictor=lambda request: untouched_gb,
        )
        return scheduler, manager, hosts

    def test_insensitive_vm_fully_pool_backed(self):
        scheduler, _, hosts = self.make_scheduler(always_insensitive, 0.0)
        request = VMRequest.create(cores=4, memory_gb=32.0)
        vm = scheduler.schedule(request, hosts[0])
        assert vm.pool_memory_gb == pytest.approx(32.0)
        assert vm.local_memory_gb == 0.0
        decision = scheduler.decisions[request.vm_id]
        assert decision.fully_pool_backed

    def test_no_history_uses_untouched_prediction(self):
        scheduler, _, hosts = self.make_scheduler(never_history, 10.6)
        request = VMRequest.create(cores=4, memory_gb=32.0)
        vm = scheduler.schedule(request, hosts[0])
        # 10.6 GB rounds down to 10 GB of zNUMA.
        assert vm.pool_memory_gb == pytest.approx(10.0)
        assert vm.local_memory_gb == pytest.approx(22.0)

    def test_sensitive_vm_with_zero_untouched_is_all_local(self):
        scheduler, _, hosts = self.make_scheduler(sensitive_with_history, 0.0)
        request = VMRequest.create(cores=4, memory_gb=32.0)
        vm = scheduler.schedule(request, hosts[0])
        assert vm.pool_memory_gb == 0.0

    def test_untouched_prediction_capped_at_vm_memory(self):
        scheduler, _, hosts = self.make_scheduler(never_history, 1000.0)
        request = VMRequest.create(cores=2, memory_gb=8.0)
        decision = scheduler.decide(request)
        assert decision.pool_gb <= 8.0

    def test_departure_queues_async_release(self):
        config = PondConfig(pool_buffer_slices_per_host=0)
        scheduler, manager, hosts = self.make_scheduler(always_insensitive, 0.0, config)
        request = VMRequest.create(cores=4, memory_gb=32.0)
        scheduler.schedule(request, hosts[0])
        scheduler.handle_departure(hosts[0], request.vm_id, time_s=100.0)
        assert manager.pending_release_slices > 0
        manager.process_releases()
        assert manager.unassigned_pool_gb == 256

    def test_pool_exhaustion_surfaces_as_capacity_error(self):
        manager, hosts = make_pool_manager(capacity_gb=4)
        scheduler = PondScheduler(
            config=PondConfig(pool_buffer_slices_per_host=0),
            pool_manager=manager,
            insensitivity_predictor=always_insensitive,
            untouched_predictor=lambda request: 0.0,
        )
        request = VMRequest.create(cores=4, memory_gb=64.0)
        with pytest.raises(HostCapacityError):
            scheduler.schedule(request, hosts[0])


class TestQoSMonitorAndMitigation:
    def place_znuma_vm(self, local=16.0, pool=16.0):
        manager, hosts = make_pool_manager(capacity_gb=64)
        host = hosts[0]
        manager.add_capacity(host.host_id, int(pool))
        request = VMRequest.create(cores=4, memory_gb=local + pool)
        vm = host.place_vm(request, local_gb=local, pool_gb=pool)
        return host, vm

    def test_ok_verdict_without_spill(self):
        host, vm = self.place_znuma_vm()
        vm.record_touch(10.0)
        monitor = QoSMonitor(PondConfig(), slowdown_estimator=lambda v: 50.0)
        decision = monitor.check_vm(vm)
        assert decision.verdict is QoSVerdict.OK

    def test_spill_within_pdm_is_tolerated(self):
        host, vm = self.place_znuma_vm()
        vm.record_touch(20.0)
        monitor = QoSMonitor(PondConfig(pdm_percent=5.0), slowdown_estimator=lambda v: 2.0)
        assert monitor.check_vm(vm).verdict is QoSVerdict.SPILL_TOLERATED

    def test_spill_beyond_pdm_triggers_mitigation(self):
        host, vm = self.place_znuma_vm()
        vm.record_touch(24.0)
        monitor = QoSMonitor(PondConfig(pdm_percent=5.0), slowdown_estimator=lambda v: 12.0)
        decisions = monitor.check_all({vm.vm_id: vm})
        assert len(decisions) == 1
        assert decisions[0].verdict is QoSVerdict.MITIGATE
        assert monitor.mitigation_rate_percent() > 0

    def test_all_local_vm_never_flagged(self):
        host = make_host()
        request = VMRequest.create(cores=4, memory_gb=32.0)
        vm = host.place_vm(request, local_gb=32.0, pool_gb=0.0)
        vm.record_touch(32.0)
        monitor = QoSMonitor(PondConfig(), slowdown_estimator=lambda v: 99.0)
        assert monitor.check_vm(vm).verdict is QoSVerdict.OK

    def test_mitigation_local_copy(self):
        host, vm = self.place_znuma_vm()
        vm.record_touch(30.0)
        manager = MitigationManager()
        record = manager.mitigate(host, vm.vm_id)
        assert record.method == "local_copy"
        assert record.moved_gb == pytest.approx(16.0)
        assert vm.pool_memory_gb == 0.0
        assert manager.n_mitigations == 1

    def test_mitigation_falls_back_to_live_migration(self):
        # Source host too small to absorb the pool memory locally.
        manager_pool, hosts = make_pool_manager(capacity_gb=64)
        small = Host(host_id="small", total_cores=8, local_memory_gb=16.0,
                     pool_latency_ns=180.0)
        manager_pool.register_host(small)
        manager_pool.add_capacity("small", 16)
        request = VMRequest.create(cores=4, memory_gb=32.0)
        vm = small.place_vm(request, local_gb=16.0, pool_gb=16.0)
        target = make_host("target")
        manager = MitigationManager()
        record = manager.mitigate(small, vm.vm_id, fallback_host=target)
        assert record.method == "live_migration"
        assert target.vms[vm.vm_id].local_memory_gb == pytest.approx(32.0)

    def test_mitigation_failure_reported(self):
        manager_pool, hosts = make_pool_manager(capacity_gb=64)
        small = Host(host_id="small2", total_cores=8, local_memory_gb=16.0)
        manager_pool.register_host(small)
        manager_pool.add_capacity("small2", 16)
        request = VMRequest.create(cores=4, memory_gb=32.0)
        vm = small.place_vm(request, local_gb=16.0, pool_gb=16.0)
        manager = MitigationManager()
        record = manager.mitigate(small, vm.vm_id, fallback_host=None)
        assert record.method == "failed"
        assert manager.n_failures == 1

    def test_unknown_vm_rejected(self):
        host = make_host()
        with pytest.raises(KeyError):
            MitigationManager().mitigate(host, "ghost")

    def test_mitigation_rate_counts_distinct_vms(self):
        """Regression: a stuck VM re-flagged every tick must not skew the
        rate.

        A failed mitigation leaves the VM spilling, so every later QoS tick
        re-flags it; the old verdict-count rate drifted upward with each
        re-check of the stuck VM (and downward with each re-check of a
        healthy one), so the reported rate depended on polling cadence.
        The rate is now flagged-VMs over checked-VMs, distinct ids each.
        """
        host, stuck = self.place_znuma_vm()
        stuck.record_touch(24.0)
        healthy = host.place_vm(
            VMRequest.create(cores=2, memory_gb=8.0), local_gb=8.0,
            pool_gb=0.0)
        monitor = QoSMonitor(PondConfig(pdm_percent=5.0),
                             slowdown_estimator=lambda v: 12.0)
        for _ in range(5):  # five ticks: one stuck VM, one healthy VM
            monitor.check_all({stuck.vm_id: stuck, healthy.vm_id: healthy})
        assert len(monitor.history) == 10
        # 1 flagged VM of 2 checked VMs -- not 5 verdicts of 10 checks
        # drifting with the tick count.
        assert monitor.mitigation_rate_percent() == pytest.approx(50.0)
        more = host.place_vm(
            VMRequest.create(cores=2, memory_gb=8.0), local_gb=8.0,
            pool_gb=0.0)
        monitor.check_vm(more)
        assert monitor.mitigation_rate_percent() == pytest.approx(100.0 / 3)

    def test_mitigation_budget_consistent_under_failures(self):
        """within_mitigation_budget follows the distinct-VM rate exactly."""
        host, vm = self.place_znuma_vm()
        vm.record_touch(24.0)
        config = PondConfig(pdm_percent=5.0,
                            qos_mitigation_budget_percent=60.0)
        monitor = QoSMonitor(config, slowdown_estimator=lambda v: 12.0)
        for _ in range(10):
            monitor.check_vm(vm)  # same VM, re-flagged every tick
        assert monitor.mitigation_rate_percent() == pytest.approx(100.0)
        assert not monitor.within_mitigation_budget()
        ok = host.place_vm(
            VMRequest.create(cores=2, memory_gb=8.0), local_gb=8.0,
            pool_gb=0.0)
        monitor.check_vm(ok)  # a second distinct, healthy VM: rate -> 50%
        assert monitor.mitigation_rate_percent() == pytest.approx(50.0)
        assert monitor.within_mitigation_budget()

    def test_empty_history_rate_is_zero(self):
        monitor = QoSMonitor(PondConfig(), slowdown_estimator=lambda v: 0.0)
        assert monitor.mitigation_rate_percent() == 0.0
        assert monitor.within_mitigation_budget()

    def test_record_kill_accounted_not_silent(self):
        """The degradation ladder's last rung is recorded, never dropped."""
        manager = MitigationManager()
        record = manager.record_kill("vm-doomed", 48.0)
        assert record.method == "killed"
        assert record.moved_gb == pytest.approx(48.0)
        assert manager.n_kills == 1
        # Kills are neither successful mitigations nor failed attempts.
        assert manager.n_mitigations == 0
        assert manager.n_failures == 0
        assert record in manager.records

"""Cross-shard pool topologies: construction, differentials, and spanning.

The load-bearing guarantees:

* the degenerate per-shard topology reproduces the classic shardwise
  ``FleetSimulator.run`` / ``capacity_search`` results **byte-identically**
  (the ``engine="object"`` / ``strategy="linear"`` differential pattern);
* a spanning group is genuinely fleet-owned: concurrent demand from two
  shards adds up in its peak, and its finite capacity is contended across
  shard boundaries at simulation time.
"""

import numpy as np
import pytest

from repro.cluster.fleet import (
    FleetSimulator,
    PoolTopology,
    pond_policy_factory,
    static_policy_factory,
)
from repro.cluster.pool import FixedFractionPolicy
from repro.cluster.pool_topology import PoolGroupLedger, replay_crossshard
from repro.cluster.server import ServerConfig
from repro.cluster.trace import ClusterTrace, VMTraceRecord
from repro.cluster.tracegen import TraceGenConfig
from repro.core.prediction.combined import CombinedOperatingPoint

OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=1.5, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


def base_config(**kwargs):
    defaults = dict(cluster_id="topo", n_servers=6, duration_days=0.4,
                    mean_lifetime_hours=2.0, target_core_utilization=0.85,
                    seed=16)
    defaults.update(kwargs)
    return TraceGenConfig(**defaults)


class TestTopologyShape:
    def test_per_shard_matches_simulator_grouping(self):
        topo = PoolTopology.per_shard([5, 3], sockets_per_server=2,
                                      pool_size_sockets=4)
        # servers_per_group = 2: shard 0 -> groups 0,0,1,1,2; shard 1 (new
        # fleet ids) -> 3,3,4.
        assert topo.group_of == ((0, 0, 1, 1, 2), (3, 3, 4))
        assert topo.is_per_shard
        assert topo.spanning_group_ids == ()
        assert topo.groups_of_shard(1) == (3, 4)
        assert topo.local_group_ids(1) == {3: 0, 4: 1}
        assert topo.domain_of_group == (0, 0, 0, 1, 1)

    def test_spanning_blocks_ignore_shard_seams(self):
        topo = PoolTopology.spanning([3, 3], sockets_per_server=2,
                                     pool_size_sockets=4)
        # Fleet-wide enumeration: group = server_index // 2.
        assert topo.group_of == ((0, 0, 1), (1, 2, 2))
        assert not topo.is_per_shard
        assert topo.spanning_group_ids == (1,)
        assert topo.group_shards[1] == (0, 1)
        assert topo.group_server_count == (2, 2, 2)

    def test_provision_capacities_per_domain(self):
        topo = PoolTopology.per_shard([4, 2], 2, 4)
        peaks = {0: 10.0, 1: 30.0, 2: 5.0}
        caps, total = topo.provision_capacities(peaks, headroom=1.1)
        # Domain 0 (shard 0): groups 0,1 at 1.1 * 30; domain 1: group 2.
        assert caps == {0: 1.1 * 30.0, 1: 1.1 * 30.0, 2: 1.1 * 5.0}
        assert total == pytest.approx(2 * 1.1 * 30.0 + 1.1 * 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolTopology([], 2, 4)
        with pytest.raises(ValueError):
            PoolTopology([[0], [1]], 2, 3)  # not a sockets multiple
        with pytest.raises(ValueError):
            PoolTopology([[0, 2]], 2, 4)  # non-contiguous group ids
        with pytest.raises(ValueError):
            PoolTopology([[0], [0]], 2, 4, domain_of_group=[0, 1])
        with pytest.raises(ValueError):
            PoolTopology.per_shard([2], 2, 0)
        topo = PoolTopology.per_shard([2, 2], 2, 4)
        with pytest.raises(ValueError):  # shard sizes disagree with fleet
            FleetSimulator.sharded(2, base_config(), pool_topology=topo)
        with pytest.raises(ValueError):  # conflicting explicit pool size
            FleetSimulator.sharded(
                2, base_config(n_servers=2), pool_size_sockets=8,
                pool_topology=topo,
            )

    def test_object_engine_rejected_with_topology(self):
        # replay_crossshard only exists on the array engine; configuring the
        # object/linear differential paths with a topology must fail loudly
        # instead of silently replaying on the array engine.
        topo = PoolTopology.per_shard([6, 6], 2, 4)
        with pytest.raises(ValueError, match="array engine"):
            FleetSimulator.sharded(2, base_config(), pool_topology=topo,
                                   engine="object")
        with pytest.raises(ValueError, match="array engine"):
            FleetSimulator.sharded(2, base_config(), pool_topology=topo,
                                   scheduler_strategy="linear")
        fleet = FleetSimulator.sharded(2, base_config(), engine="object",
                                       pool_size_sockets=4)
        with pytest.raises(ValueError, match="array engine"):
            fleet.capacity_search(pool_topology=topo)

    def test_ledger_capacity_validation(self):
        topo = PoolTopology.per_shard([2], 2, 2)
        with pytest.raises(ValueError):
            PoolGroupLedger.for_topology(topo, {0: 1.0})  # group 1 missing


@pytest.fixture(scope="module")
def fleet_traces():
    fleet = FleetSimulator.sharded(3, base_config(), pool_size_sockets=4)
    return fleet.generate_traces()


class TestDegenerateDifferential:
    """Per-shard topology == classic shardwise path, byte for byte."""

    @pytest.mark.parametrize("factory_name", ["pond", "static"])
    def test_run_byte_identical(self, fleet_traces, factory_name):
        factory = (
            pond_policy_factory(OPERATING_POINT, seed=3)
            if factory_name == "pond"
            else static_policy_factory(fraction=0.25, seed=1)
        )
        legacy = FleetSimulator.sharded(3, base_config(), pool_size_sockets=4)
        reference = legacy.run(factory, traces=fleet_traces)

        topo = PoolTopology.per_shard([6, 6, 6], 2, 4)
        fleet = FleetSimulator.sharded(3, base_config(), pool_topology=topo)
        result = fleet.run(factory, traces=fleet_traces)

        assert result.savings == reference.savings
        for got, ref in zip(result.shards, reference.shards):
            assert got.result.placed_vms == ref.result.placed_vms
            assert got.result.rejected_vms == ref.result.rejected_vms
            assert got.result.server_peak_local_gb \
                == ref.result.server_peak_local_gb
            assert got.result.server_peak_total_gb \
                == ref.result.server_peak_total_gb
            assert got.result.pool_peak_gb == ref.result.pool_peak_gb
            assert got.result.total_pool_gb_allocated \
                == ref.result.total_pool_gb_allocated
            assert got.baseline_required_dram_gb \
                == ref.baseline_required_dram_gb
            assert np.array_equal(got.result.sample_buffer.rows(),
                                  ref.result.sample_buffer.rows())
            assert got.savings == ref.savings

    def test_run_byte_identical_streamed(self):
        factory = static_policy_factory(fraction=0.3, seed=2)
        legacy = FleetSimulator.sharded(2, base_config(), pool_size_sockets=4,
                                        stream_chunk_size=64)
        reference = legacy.run(factory)
        topo = PoolTopology.per_shard([6, 6], 2, 4)
        fleet = FleetSimulator.sharded(2, base_config(), pool_topology=topo,
                                       stream_chunk_size=64)
        result = fleet.run(factory)
        assert result.savings == reference.savings
        for got, ref in zip(result.shards, reference.shards):
            assert got.result.server_peak_local_gb \
                == ref.result.server_peak_local_gb
            assert got.result.pool_peak_gb == ref.result.pool_peak_gb
            assert np.array_equal(got.result.sample_buffer.rows(),
                                  ref.result.sample_buffer.rows())

    def test_per_vm_callback_path_matches_batch(self, fleet_traces):
        topo = PoolTopology.per_shard([6, 6, 6], 2, 4)
        factory = pond_policy_factory(OPERATING_POINT, seed=3)
        fleet = FleetSimulator.sharded(3, base_config(), pool_topology=topo)
        batch = fleet.run(factory, traces=fleet_traces, batch=True)
        callback = fleet.run(factory, traces=fleet_traces, batch=False,
                             compute_baseline=False)
        assert batch.placed_vms == callback.placed_vms
        for got, ref in zip(batch.shards, callback.shards):
            assert got.result.server_peak_local_gb \
                == ref.result.server_peak_local_gb
            assert got.result.pool_peak_gb == ref.result.pool_peak_gb

    def test_capacity_search_byte_identical(self, fleet_traces):
        factory = static_policy_factory(fraction=0.25, seed=1)
        legacy = FleetSimulator.sharded(3, base_config(), pool_size_sockets=4)
        reference = legacy.capacity_search(factory, traces=fleet_traces,
                                           search_steps=4)
        topo = PoolTopology.per_shard([6, 6, 6], 2, 4)
        fleet = FleetSimulator.sharded(3, base_config(), pool_topology=topo)
        result = fleet.capacity_search(factory, traces=fleet_traces,
                                       search_steps=4)
        assert result.savings == reference.savings
        assert result.baseline_per_server_gb == reference.baseline_per_server_gb
        assert result.pooled_per_server_gb == reference.pooled_per_server_gb
        assert result.per_shard_pool_capacity_gb \
            == reference.per_shard_pool_capacity_gb
        assert result.total_vms == reference.total_vms
        assert result.rejection_budget == reference.rejection_budget
        assert result.pool_topology is topo


def _two_shard_setup():
    """Two single-server shards with hand-built overlapping pooled VMs."""
    server = ServerConfig(name="tiny", sockets=2, cores_per_socket=4,
                          dram_per_socket_gb=64.0)
    cfgs = [
        TraceGenConfig(cluster_id=f"c{i}", n_servers=1, server_config=server,
                       duration_days=0.1, seed=i)
        for i in range(2)
    ]
    trace_a = ClusterTrace([
        VMTraceRecord(vm_id="a0", cluster_id="c0", arrival_s=0.0,
                      lifetime_s=100.0, cores=1, memory_gb=20.0),
    ], cluster_id="c0")
    trace_b = ClusterTrace([
        VMTraceRecord(vm_id="b0", cluster_id="c1", arrival_s=50.0,
                      lifetime_s=100.0, cores=1, memory_gb=20.0),
    ], cluster_id="c1")
    return cfgs, [trace_a, trace_b]


class TestSpanningSemantics:
    def test_concurrent_demand_adds_in_spanning_peak(self):
        cfgs, traces = _two_shard_setup()
        # One group over both servers (pool_size 4 sockets = 2 servers).
        topo = PoolTopology.spanning([1, 1], 2, 4)
        results, ledger = replay_crossshard(
            traces, [FixedFractionPolicy(0.5)] * 2, [1, 1],
            [cfg.server_config for cfg in cfgs], topo,
            float("inf"), False, 3600.0,
        )
        # Both VMs put 10 GB on the shared group; lifetimes overlap at
        # t in [50, 100], so the fleet-level peak is 20 -- not the 10 either
        # shard would report alone.
        assert ledger.peak_gb == {0: 20.0}
        assert [r.placed_vms for r in results] == [1, 1]
        # Spanned groups belong to the fleet, not to a shard.
        assert results[0].pool_peak_gb == {}

    def test_finite_capacity_contended_across_shards(self):
        cfgs, traces = _two_shard_setup()
        topo = PoolTopology.spanning([1, 1], 2, 4)
        results, ledger = replay_crossshard(
            traces, [FixedFractionPolicy(0.5)] * 2, [1, 1],
            [cfg.server_config for cfg in cfgs], topo,
            15.0, False, 3600.0,
        )
        # Shard 0 drew 10 of the 15 GB; shard 1's request for 10 more must
        # be rejected while the first VM is still running.
        assert results[0].placed_vms == 1
        assert results[1].rejected_vms == 1
        assert ledger.peak_gb == {0: 10.0}

        # The degenerate topology gives each shard its own 15 GB group, so
        # both fit: spanning genuinely changes feasibility.
        per_shard = PoolTopology.per_shard([1, 1], 2, 4)
        results2, _ = replay_crossshard(
            traces, [FixedFractionPolicy(0.5)] * 2, [1, 1],
            [cfg.server_config for cfg in cfgs], per_shard,
            15.0, False, 3600.0,
        )
        assert [r.placed_vms for r in results2] == [1, 1]

    def test_fleet_run_exposes_topology_views(self, fleet_traces):
        topo = PoolTopology.spanning([6, 6, 6], 2, 8)
        fleet = FleetSimulator.sharded(3, base_config(), pool_topology=topo)
        factory = static_policy_factory(fraction=0.25, seed=1)
        result = fleet.run(factory, traces=fleet_traces)
        assert result.pool_topology is topo
        assert set(result.fleet_pool_peak_gb) == set(range(topo.n_groups))
        assert result.required_pool_dram_gb > 0.0
        assert result.savings.required_pool_dram_gb \
            == result.required_pool_dram_gb
        # Shard-level pool peaks are deliberately empty under spanning.
        assert all(s.result.pool_peak_gb == {} for s in result.shards)

    def test_spanning_capacity_search_runs_and_provisions(self, fleet_traces):
        topo = PoolTopology.spanning([6, 6, 6], 2, 8)
        fleet = FleetSimulator.sharded(3, base_config())
        factory = static_policy_factory(fraction=0.25, seed=1)
        search = fleet.capacity_search(factory, traces=fleet_traces,
                                       search_steps=3, pool_topology=topo)
        assert search.pool_topology is topo
        caps = search.pool_capacity_gb_by_group
        assert set(caps) == set(range(topo.n_groups))
        # One fleet-wide provisioning domain: every group shares a capacity.
        assert len(set(caps.values())) == 1
        assert search.per_shard_pool_capacity_gb == ()
        assert search.savings.required_pool_dram_gb == pytest.approx(
            sum(caps.values())
        )


class BatchFractionPolicy:
    """Minimal decide_batch policy with per-shard fractions (no digests)."""

    def __init__(self, fraction):
        self.fraction = fraction

    def __call__(self, record):
        return self.fraction * record.memory_gb

    def decide_batch(self, block):
        cols = block.columns() if hasattr(block, "columns") else block
        return self.fraction * cols.memory_gb


class TestInlinedLoopDifferential:
    """The inlined cross-shard pump == the engine-method reference loop.

    ``replay_crossshard`` dispatches materialised uniform-SKU inputs to the
    flat-array inlined loop (`_replay_crossshard_inlined`); the
    engine-method event loop (`_replay_crossshard_events`) stays as the
    differential reference.  Everything observable must match byte for
    byte: placements, rejections, totals, per-server peaks, per-group
    ledger state, and the full sample matrices.
    """

    @pytest.fixture(scope="class")
    def shard_traces(self):
        from repro.cluster.tracegen import TraceGenerator
        traces = []
        for s, n in enumerate([6, 8, 5]):
            cfg = base_config(cluster_id=f"inl-{s}", n_servers=n,
                              target_core_utilization=0.93, seed=40 + s)
            traces.append(TraceGenerator(cfg).generate())
        return traces

    @staticmethod
    def _run(fn, traces, topo, policies, capacity):
        n_servers = [6, 8, 5]
        cfgs = [ServerConfig() for _ in n_servers]
        return fn(traces, policies, n_servers, cfgs, topo, capacity,
                  False, 3600.0, record_placements=True)

    @staticmethod
    def _assert_identical(a_out, b_out):
        (ra, la), (rb, lb) = a_out, b_out
        assert la.capacity_gb == lb.capacity_gb
        assert la.free_gb == lb.free_gb
        assert la.used_gb == lb.used_gb
        assert la.peak_gb == lb.peak_gb
        for x, y in zip(ra, rb):
            assert x.placed_vms == y.placed_vms
            assert x.rejected_vms == y.rejected_vms
            assert x.total_memory_gb_allocated == y.total_memory_gb_allocated
            assert x.total_pool_gb_allocated == y.total_pool_gb_allocated
            assert x.server_peak_local_gb == y.server_peak_local_gb
            assert x.server_peak_total_gb == y.server_peak_total_gb
            assert x.pool_peak_gb == y.pool_peak_gb
            assert x.placements == y.placements
            assert np.array_equal(x.sample_buffer.rows(),
                                  y.sample_buffer.rows())

    @pytest.mark.parametrize("topo_name", ["per_shard", "spanning"])
    @pytest.mark.parametrize("pol_name", ["callable", "batch", "zero"])
    @pytest.mark.parametrize("capacity", [120.0, 1e6])
    def test_byte_identical(self, shard_traces, topo_name, pol_name,
                            capacity):
        from repro.cluster.pool_topology import _replay_crossshard_events
        make = (PoolTopology.per_shard if topo_name == "per_shard"
                else PoolTopology.spanning)
        topo = make([6, 8, 5], 2, 16)
        policies = {
            "callable": [lambda r: 0.4 * r.memory_gb] * 3,
            "batch": [BatchFractionPolicy(0.3), BatchFractionPolicy(0.5),
                      BatchFractionPolicy(0.2)],
            "zero": [lambda r: 0.0] * 3,
        }[pol_name]
        self._assert_identical(
            self._run(replay_crossshard, shard_traces, topo, policies,
                      capacity),
            self._run(_replay_crossshard_events, shard_traces, topo,
                      policies, capacity),
        )

    def test_byte_identical_dict_capacity(self, shard_traces):
        from repro.cluster.pool_topology import _replay_crossshard_events
        topo = PoolTopology.spanning([6, 8, 5], 2, 16)
        caps = {g: 100.0 + 10.0 * g for g in range(topo.n_groups)}
        policies = [BatchFractionPolicy(0.4)] * 3
        self._assert_identical(
            self._run(replay_crossshard, shard_traces, topo, policies, caps),
            self._run(_replay_crossshard_events, shard_traces, topo,
                      policies, caps),
        )

    def test_dispatcher_uses_inlined_loop(self, shard_traces, monkeypatch):
        """Materialised uniform-SKU inputs must take the inlined path."""
        import repro.cluster.pool_topology as pt
        calls = []
        inlined = pt._replay_crossshard_inlined

        def spy(*args, **kwargs):
            calls.append(1)
            return inlined(*args, **kwargs)

        monkeypatch.setattr(pt, "_replay_crossshard_inlined", spy)
        topo = PoolTopology.spanning([6, 8, 5], 2, 16)
        replay_crossshard(
            shard_traces, [BatchFractionPolicy(0.4)] * 3, [6, 8, 5],
            [ServerConfig()] * 3, topo, 120.0, False, 3600.0,
        )
        assert calls == [1]

    def test_dispatcher_falls_back_on_mixed_skus(self, shard_traces,
                                                 monkeypatch):
        """Mixed server SKUs must use the engine-method reference loop."""
        import repro.cluster.pool_topology as pt
        monkeypatch.setattr(
            pt, "_replay_crossshard_inlined",
            lambda *a, **k: pytest.fail("inlined loop used for mixed SKUs"),
        )
        cfgs = [ServerConfig(),
                ServerConfig(name="fat", dram_per_socket_gb=512.0),
                ServerConfig()]
        topo = PoolTopology.spanning([6, 8, 5], 2, 16)
        results, _ = replay_crossshard(
            shard_traces, [BatchFractionPolicy(0.4)] * 3, [6, 8, 5],
            cfgs, topo, 120.0, False, 3600.0,
        )
        assert sum(r.placed_vms for r in results) > 0

"""EMC device-model lockdown: port lifecycle, slice ownership, permissions.

The EMC (paper Section 4.1) is the failure domain the fault-injection
subsystem kills (``repro.cluster.faults``), so its management-plane
contract must be airtight:

* ``attach_host`` — duplicate attach and port exhaustion both raise
  ``EMCError``; an attach never steals another host's port.
* ``detach_host`` — releases *every* slice the host owned before freeing
  the port (no orphaned ``_SliceState`` owners), and a double detach
  raises instead of silently passing.
* ``check_access`` — non-owner access is the fatal
  ``SlicePermissionError``, including after the owner detached.
"""

import pytest

from repro.cxl.emc import EMCDevice, EMCError, SlicePermissionError


def make_emc(capacity_gb=8, n_ports=2):
    return EMCDevice("emc-0", capacity_gb=capacity_gb, n_ports=n_ports)


class TestAttachHost:
    def test_attach_assigns_first_free_port(self):
        emc = make_emc()
        assert emc.attach_host("h0") == 0
        assert emc.attach_host("h1") == 1
        assert emc.attached_hosts == ["h0", "h1"]

    def test_duplicate_attach_raises(self):
        emc = make_emc()
        emc.attach_host("h0")
        with pytest.raises(EMCError, match="already attached"):
            emc.attach_host("h0")

    def test_port_exhaustion_raises(self):
        emc = make_emc(n_ports=2)
        emc.attach_host("h0")
        emc.attach_host("h1")
        with pytest.raises(EMCError, match="no free CXL port"):
            emc.attach_host("h2")
        # The failed attach must not leave partial state behind.
        assert emc.attached_hosts == ["h0", "h1"]
        assert emc.slices_of("h2") == []

    def test_detach_frees_port_for_reuse(self):
        emc = make_emc(n_ports=1)
        emc.attach_host("h0")
        emc.detach_host("h0")
        assert emc.attach_host("h1") == 0


class TestDetachHost:
    def test_detach_releases_all_slices(self):
        emc = make_emc(capacity_gb=8)
        emc.attach_host("h0")
        held = [emc.assign_slice("h0") for _ in range(3)]
        assert emc.free_slices == emc.n_slices - 3
        emc.detach_host("h0")
        # No orphaned owners: every slice is free and reassignable.
        assert emc.free_slices == emc.n_slices
        for index in held:
            assert emc.owner_of(index) is None
        assert "h0" not in emc.attached_hosts

    def test_released_slices_are_reassignable(self):
        emc = make_emc()
        emc.attach_host("h0")
        index = emc.assign_slice("h0")
        emc.detach_host("h0")
        emc.attach_host("h1")
        assert emc.assign_slice("h1", index) == index
        assert emc.owner_of(index) == "h1"

    def test_reattach_starts_clean(self):
        emc = make_emc()
        emc.attach_host("h0")
        emc.assign_slice("h0")
        emc.detach_host("h0")
        emc.attach_host("h0")
        assert emc.slices_of("h0") == []

    def test_detach_unknown_host_raises(self):
        emc = make_emc()
        with pytest.raises(EMCError, match="not attached"):
            emc.detach_host("ghost")

    def test_double_detach_raises(self):
        emc = make_emc()
        emc.attach_host("h0")
        emc.detach_host("h0")
        with pytest.raises(EMCError, match="not attached"):
            emc.detach_host("h0")

    def test_detach_leaves_other_hosts_untouched(self):
        emc = make_emc()
        emc.attach_host("h0")
        emc.attach_host("h1")
        kept = emc.assign_slice("h1")
        emc.detach_host("h0")
        assert emc.owner_of(kept) == "h1"
        assert emc.slices_of("h1") == [kept]
        assert emc.attached_hosts == ["h1"]


class TestSlicePermissions:
    def test_owner_access_passes(self):
        emc = make_emc()
        emc.attach_host("h0")
        index = emc.assign_slice("h0")
        emc.check_access("h0", index)  # must not raise

    def test_non_owner_access_is_fatal(self):
        emc = make_emc()
        emc.attach_host("h0")
        emc.attach_host("h1")
        index = emc.assign_slice("h0")
        with pytest.raises(SlicePermissionError):
            emc.check_access("h1", index)

    def test_access_to_free_slice_is_fatal(self):
        emc = make_emc()
        emc.attach_host("h0")
        with pytest.raises(SlicePermissionError):
            emc.check_access("h0", 0)

    def test_access_after_owner_detached_is_fatal(self):
        """A departed host's stale mapping must hit the permission table."""
        emc = make_emc()
        emc.attach_host("h0")
        index = emc.assign_slice("h0")
        emc.detach_host("h0")
        with pytest.raises(SlicePermissionError):
            emc.check_access("h0", index)

    def test_permission_error_is_an_emc_error(self):
        assert issubclass(SlicePermissionError, EMCError)

    def test_release_by_non_owner_raises(self):
        emc = make_emc()
        emc.attach_host("h0")
        emc.attach_host("h1")
        index = emc.assign_slice("h0")
        with pytest.raises(EMCError, match="owned by"):
            emc.release_slice("h1", index)
        assert emc.owner_of(index) == "h0"

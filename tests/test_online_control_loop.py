"""The online prediction-driven control loop (paper Sections 4.2-4.4).

Lock-down for the ``online=OnlineControlConfig(...)`` replay stage:

* **Differential**: with mitigation disabled (QoS threshold ``inf``) the
  online loop must be byte-identical to the static replay of the same
  policy -- sample rows, peaks, placements, counters -- on the array
  engine, against the object engine's buffers, and through the
  cross-shard topology pump (per-shard and spanning).
* **Determinism**: bit-reproducible across process-pool shard fan-out and
  under ``PYTHONHASHSEED`` variation (the mitigations fire from model
  predictions keyed on VM digests, so any hash()-order leak would show).
* **Monotonicity**: a stricter QoS threshold mitigates a superset of VMs.
* **Fault paths**: NaN/zero-sample telemetry, VMs departing
  mid-mitigation, and node-headroom exhaustion degrade gracefully with no
  negative pool-ledger drift.

Never compare two ``SimulationResult`` objects with ``==``: the sample
buffer compares by identity, so whole-object equality is always False for
independent runs.  Compare ``sample_buffer.rows()`` and the scalar fields.
"""

import math
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.cluster import ClusterSimulator, TraceGenerator, TraceGenConfig
from repro.cluster.engine import ArrayPlacementEngine
from repro.cluster.fleet import (
    FleetSimulator,
    PoolTopology,
    prediction_policy_factory,
)
from repro.cluster.pool_topology import replay_crossshard
from repro.cluster.server import ServerConfig
from repro.core.control_plane.online import (
    FALLBACK_SLOWDOWN_SCALE_PERCENT,
    OnlineControlConfig,
    OnlineControlStats,
    at_risk_mask,
    estimate_slowdown_batch,
)
from repro.core.policies import PredictionPolicy

DISABLED = OnlineControlConfig(qos_threshold_percent=float("inf"))


@pytest.fixture(scope="module")
def policy():
    return PredictionPolicy.train(seed=3)


@pytest.fixture(scope="module")
def trace():
    cfg = TraceGenConfig(n_servers=24, duration_days=1.0,
                         mean_lifetime_hours=2.0,
                         target_core_utilization=0.85, seed=11)
    return TraceGenerator(cfg).generate()


def assert_results_identical(a, b):
    """Byte-identity of two replays, field by field."""
    assert np.array_equal(a.sample_buffer.rows(), b.sample_buffer.rows())
    assert a.server_peak_local_gb == b.server_peak_local_gb
    assert a.server_peak_total_gb == b.server_peak_total_gb
    assert a.pool_peak_gb == b.pool_peak_gb
    assert a.placed_vms == b.placed_vms
    assert a.rejected_vms == b.rejected_vms
    assert a.total_memory_gb_allocated == b.total_memory_gb_allocated


def make_simulator(engine="array", **kwargs):
    defaults = dict(n_servers=24, pool_size_sockets=8,
                    constrain_memory=False, sample_interval_s=3600.0,
                    engine=engine)
    defaults.update(kwargs)
    return ClusterSimulator(**defaults)


class TestDisabledMitigationIsStatic:
    """QoS threshold ``inf`` must reproduce the static replay exactly."""

    def test_array_engine_byte_identity(self, trace, policy):
        static = make_simulator().run(trace, policy)
        online = make_simulator().run(trace, policy, online=DISABLED)
        assert_results_identical(static, online)
        assert static.online_stats is None
        stats = online.online_stats
        assert stats is not None
        assert stats.n_ticks == 0
        assert stats.n_checks == 0
        assert stats.n_mitigations == 0
        assert stats.mitigated_vm_ids == []

    def test_matches_object_engine_buffers(self, trace, policy):
        """The online loop (array-only) reproduces the object engine's
        sample buffer too, via the pinned array==object differential."""
        static_obj = make_simulator(engine="object").run(trace, policy)
        online = make_simulator().run(trace, policy, online=DISABLED)
        assert_results_identical(static_obj, online)

    def test_constrained_replay_byte_identity(self, trace, policy):
        kwargs = dict(constrain_memory=True, pool_capacity_gb_per_group=600.0)
        static = make_simulator(**kwargs).run(trace, policy)
        online = make_simulator(**kwargs).run(trace, policy, online=DISABLED)
        assert_results_identical(static, online)

    def test_object_engine_rejected(self, trace, policy):
        with pytest.raises(ValueError, match="array"):
            make_simulator(engine="object").run(trace, policy, online=DISABLED)

    @pytest.mark.parametrize("topology", ["per_shard", "spanning"])
    def test_crossshard_topologies(self, policy, topology):
        cfgs = [
            TraceGenConfig(cluster_id=f"oc-{i}", n_servers=8,
                           duration_days=0.6, mean_lifetime_hours=2.0,
                           target_core_utilization=0.85, seed=21 + i)
            for i in range(2)
        ]
        traces = [TraceGenerator(cfg).generate() for cfg in cfgs]
        policies = [policy, policy]
        topo = getattr(PoolTopology, topology)([8, 8], 2, 8)
        common = (traces, policies, [8, 8],
                  [cfg.server_config for cfg in cfgs], topo,
                  float("inf"), False, 3600.0)
        static_results, static_ledger = replay_crossshard(*common)
        online_results, online_ledger = replay_crossshard(*common,
                                                          online=DISABLED)
        for static, online in zip(static_results, online_results):
            assert_results_identical(static, online)
            assert online.online_stats.n_mitigations == 0
        assert static_ledger.peak_gb == online_ledger.peak_gb

    def test_crossshard_shard_agrees_with_single_cluster(self, policy):
        """Per-shard topology online replay == the same shard run alone."""
        cfg = TraceGenConfig(cluster_id="solo", n_servers=8,
                             duration_days=0.6, mean_lifetime_hours=2.0,
                             target_core_utilization=0.85, seed=33)
        shard_trace = TraceGenerator(cfg).generate()
        online = OnlineControlConfig(qos_threshold_percent=5.0)
        topo = PoolTopology.per_shard([8], 2, 8)
        results, _ = replay_crossshard(
            [shard_trace], [policy], [8], [cfg.server_config], topo,
            float("inf"), False, 3600.0, online=online,
        )
        solo = make_simulator(n_servers=8, pool_size_sockets=8).run(
            shard_trace, policy, online=online)
        assert_results_identical(solo, results[0])
        assert solo.online_stats.n_mitigations == \
            results[0].online_stats.n_mitigations
        assert solo.online_stats.mitigated_vm_ids == \
            results[0].online_stats.mitigated_vm_ids
        assert solo.online_stats.migrated_gb == \
            results[0].online_stats.migrated_gb


class TestMitigationEffects:
    def test_mitigation_fires_and_accounts(self, trace, policy):
        online = OnlineControlConfig(qos_threshold_percent=5.0,
                                     migration_cost_s_per_gb=0.25)
        result = make_simulator().run(trace, policy, online=online)
        stats = result.online_stats
        assert stats.n_ticks > 0
        assert stats.n_mitigations > 0
        assert stats.migrated_gb > 0.0
        assert stats.migration_time_s == pytest.approx(
            0.25 * stats.migrated_gb)
        assert stats.mean_mitigation_s == pytest.approx(
            stats.migration_time_s / stats.n_mitigations)
        assert len(stats.mitigated_vm_ids) == stats.n_mitigations
        # A VM is mitigated at most once (its pool share is gone after).
        assert len(set(stats.mitigated_vm_ids)) == stats.n_mitigations

    def test_at_risk_mask_monotone_in_threshold(self, trace, policy):
        """The flagging predicate itself is monotone: lowering the
        threshold can only grow the mask (pure function of the batch)."""
        pool_gb = policy.decide_batch(trace)
        slowdowns = estimate_slowdown_batch(policy, trace, pool_gb)
        previous = None
        for threshold in (1.0, 3.0, 8.0, 20.0, float("inf")):
            mask = at_risk_mask(slowdowns, pool_gb, threshold)
            if previous is not None:
                assert np.all(previous | ~mask)  # mask subset of previous
            previous = mask
        assert not at_risk_mask(slowdowns, pool_gb, float("inf")).any()

    def test_threshold_monotone_superset(self, trace, policy):
        """Stricter threshold => superset of mitigated VMs end to end.

        Flagging depends only on (policy, trace, threshold) -- never on
        placement -- and the unconstrained replay cannot fail a
        mitigation, so the mitigated set is the flagged subset of the
        placed VMs and shrinks as the threshold loosens.
        """
        mitigated, rejected = {}, set()
        for threshold in (3.0, 8.0, 20.0):
            online = OnlineControlConfig(qos_threshold_percent=threshold)
            result = make_simulator().run(trace, policy, online=online)
            assert result.online_stats.n_failed_mitigations == 0
            rejected.add(result.rejected_vms)
            mitigated[threshold] = set(result.online_stats.mitigated_vm_ids)
        # Core-fragmentation rejections must not vary with the threshold,
        # or the placed population itself would confound the comparison.
        assert len(rejected) == 1
        assert mitigated[3.0] >= mitigated[8.0] >= mitigated[20.0]
        assert mitigated[3.0] > mitigated[20.0]  # thresholds actually bite


class TestDeterminism:
    def _fleet(self, max_workers):
        base = TraceGenConfig(cluster_id="det", n_servers=8,
                              duration_days=0.6, mean_lifetime_hours=2.0,
                              target_core_utilization=0.85, seed=5)
        return FleetSimulator.sharded(2, base, pool_size_sockets=8,
                                      max_workers=max_workers)

    def test_serial_equals_process_pool(self, policy):
        online = OnlineControlConfig(qos_threshold_percent=5.0)
        factory = prediction_policy_factory(policy=policy)
        serial = self._fleet(max_workers=None).run(factory, online=online)
        pooled = self._fleet(max_workers=2).run(factory, online=online)
        for a, b in zip(serial.shards, pooled.shards):
            assert_results_identical(a.result, b.result)
            assert a.result.online_stats.mitigated_vm_ids == \
                b.result.online_stats.mitigated_vm_ids
        merged_a, merged_b = serial.online_stats, pooled.online_stats
        assert merged_a.n_mitigations == merged_b.n_mitigations
        assert merged_a.migrated_gb == merged_b.migrated_gb
        assert merged_a.n_mitigations > 0

    _SUBPROCESS_SNIPPET = """
import numpy as np
from repro.cluster import ClusterSimulator, TraceGenerator, TraceGenConfig
from repro.core.control_plane.online import OnlineControlConfig
from repro.core.policies import PredictionPolicy

cfg = TraceGenConfig(n_servers=8, duration_days=0.5, mean_lifetime_hours=2.0,
                     target_core_utilization=0.85, seed=11)
trace = TraceGenerator(cfg).generate()
policy = PredictionPolicy.train(seed=3, n_samples=256)
sim = ClusterSimulator(n_servers=8, pool_size_sockets=8,
                       constrain_memory=False, sample_interval_s=3600.0)
result = sim.run(trace, policy,
                 online=OnlineControlConfig(qos_threshold_percent=5.0))
stats = result.online_stats
print(stats.n_mitigations, repr(stats.mitigated_vm_ids))
print(repr(result.sample_buffer.rows().tobytes().hex()))
"""

    def _replay_output(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", self._SUBPROCESS_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        return proc.stdout

    def test_online_replay_independent_of_hash_seed(self):
        baseline = self._replay_output("0")
        n_mitigations = int(baseline.split()[0])
        assert n_mitigations > 0  # the loop actually mitigated something
        assert self._replay_output("12345") == baseline
        assert self._replay_output("random") == baseline


class TestSlowdownEstimation:
    def test_nan_predictions_become_infinite_slowdown(self, trace):
        class NaNPolicy:
            def predict_slowdown_batch(self, chunk, pool_gb):
                return np.full(len(pool_gb), np.nan)

        pool_gb = np.array([1.0, 0.0, 2.0])
        slowdowns = estimate_slowdown_batch(NaNPolicy(), trace[:3], pool_gb)
        assert np.all(np.isinf(slowdowns))
        # NaN telemetry must flag, not silently pass, the at-risk check.
        mask = at_risk_mask(slowdowns, pool_gb, 5.0)
        assert mask.tolist() == [True, False, True]

    def test_zero_sample_telemetry(self, policy):
        slowdowns = estimate_slowdown_batch(
            policy, [], np.zeros(0, dtype=np.float64))
        assert slowdowns.shape == (0,)
        assert at_risk_mask(slowdowns, np.zeros(0), 5.0).shape == (0,)

    def test_fallback_estimator_without_batch_policy(self, trace):
        records = list(trace[:4])
        pool_gb = np.array([r.memory_gb * 0.5 for r in records])
        slowdowns = estimate_slowdown_batch(None, records, pool_gb)
        spill = np.array([
            max(p - r.untouched_fraction * r.memory_gb, 0.0)
            for r, p in zip(records, pool_gb)
        ])
        expected = FALLBACK_SLOWDOWN_SCALE_PERCENT * spill / np.array(
            [max(r.memory_gb, 1e-12) for r in records])
        assert np.allclose(slowdowns, expected)


class TestEngineFaultPaths:
    def _engine(self, dram_per_socket_gb=64.0, pool_capacity_gb=100.0):
        config = ServerConfig(name="tiny", sockets=2, cores_per_socket=8,
                              dram_per_socket_gb=dram_per_socket_gb)
        return ArrayPlacementEngine.for_cluster(
            1, config, pool_size_sockets=2,
            pool_capacity_gb_per_group=pool_capacity_gb)

    def test_migrate_no_pool_is_noop(self):
        engine = self._engine()
        handle = engine.place(2, 10.0, 0.0)
        assert engine.migrate_pool_to_local(handle) == 0.0

    def test_migrate_moves_ledger_consistently(self):
        engine = self._engine()
        handle = engine.place(2, 10.0, 30.0)
        assert engine.pool_used_gb[0] == 30.0
        moved = engine.migrate_pool_to_local(handle)
        assert moved == 30.0
        assert engine.pool_used_gb[0] == 0.0
        assert engine.pool_free_gb[0] == 100.0
        assert engine.used_local_gb == 40.0
        # Second call: the pool share is gone, nothing to move.
        assert engine.migrate_pool_to_local(handle) == 0.0
        # Departure after mitigation must not drive the ledger negative.
        engine.remove(handle)
        assert engine.pool_used_gb[0] == 0.0
        assert engine.pool_free_gb[0] == 100.0

    def test_migrate_fails_without_headroom_and_keeps_ledger(self):
        engine = self._engine(dram_per_socket_gb=32.0)
        # 30 GB local on one node; the 20 GB pool share cannot fit back.
        handle = engine.place(2, 30.0, 20.0)
        assert engine.migrate_pool_to_local(handle) == -1.0
        # A failed mitigation leaves every ledger untouched.
        assert engine.pool_used_gb[0] == 20.0
        assert engine.used_local_gb == 30.0
        engine.remove(handle)
        assert engine.pool_used_gb[0] == 0.0
        assert engine.pool_free_gb[0] == 100.0

    def test_failed_mitigations_counted_and_retried(self, policy):
        """A replay where mitigation cannot fit records failures, keeps
        retrying, and never drives pool ledgers negative."""
        small_servers = ServerConfig(name="cramped", sockets=2,
                                     cores_per_socket=24,
                                     dram_per_socket_gb=48.0)
        cfg = TraceGenConfig(n_servers=6, duration_days=0.6,
                             mean_lifetime_hours=2.0,
                             target_core_utilization=0.95, seed=13,
                             server_config=small_servers)
        tight_trace = TraceGenerator(cfg).generate()
        sim = ClusterSimulator(n_servers=6, server_config=small_servers,
                               pool_size_sockets=8, constrain_memory=True,
                               sample_interval_s=1800.0)
        result = sim.run(tight_trace, policy,
                         online=OnlineControlConfig(qos_threshold_percent=1.0))
        stats = result.online_stats
        assert stats.n_checks > 0
        # Graceful degradation: every ledger sample stays non-negative.
        rows = result.sample_buffer.rows()
        assert np.all(rows[:, 4] >= 0.0)  # pool_used column
        assert all(peak >= 0.0 for peak in result.pool_peak_gb.values())


class TestControlPlaneFaults:
    def _vm(self, host, pool_gb=8.0, local_gb=8.0, touched=None):
        from repro.hypervisor.vm import VMRequest
        request = VMRequest(vm_id="vm-1", cores=2,
                            memory_gb=local_gb + pool_gb)
        vm = host.place_vm(request, local_gb=local_gb, pool_gb=pool_gb,
                           start_time_s=0.0)
        vm.record_touch(touched if touched is not None
                        else local_gb + pool_gb)
        return vm

    def _host(self):
        from repro.hypervisor.host import Host
        host = Host("h0", total_cores=16, local_memory_gb=64.0)
        host.online_pool_memory(32.0)
        return host

    def test_nan_telemetry_mitigates(self):
        from repro.core.config import PondConfig
        from repro.core.control_plane.qos_monitor import QoSMonitor, QoSVerdict

        host = self._host()
        vm = self._vm(host)
        monitor = QoSMonitor(PondConfig(),
                             slowdown_estimator=lambda vm: float("nan"))
        decision = monitor.check_vm(vm)
        assert decision.verdict is QoSVerdict.MITIGATE
        assert math.isnan(decision.estimated_slowdown_percent)

    def test_departed_vm_mitigation_missing_ok(self):
        from repro.core.control_plane.mitigation import MitigationManager

        host = self._host()
        self._vm(host)
        host.terminate_vm("vm-1", time_s=10.0)
        manager = MitigationManager()
        record = manager.mitigate(host, "vm-1", missing_ok=True)
        assert record.method == "vm_departed"
        assert record.moved_gb == 0.0
        # Departed-race records are neither mitigations nor failures.
        assert manager.n_mitigations == 0
        assert manager.n_failures == 0
        # The default contract is unchanged: unknown VM raises.
        with pytest.raises(KeyError):
            manager.mitigate(host, "vm-1")


class TestOnlineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineControlConfig(qos_threshold_percent=0.0)
        with pytest.raises(ValueError):
            OnlineControlConfig(qos_threshold_percent=5.0,
                                migration_cost_s_per_gb=-1.0)

    def test_mitigation_enabled(self):
        assert OnlineControlConfig(qos_threshold_percent=5.0).mitigation_enabled
        assert not DISABLED.mitigation_enabled

    def test_stats_merge(self):
        a = OnlineControlStats(n_ticks=2, n_checks=5, n_mitigations=1,
                               migrated_gb=4.0, migration_time_s=0.8,
                               mitigated_vm_ids=["x"])
        b = OnlineControlStats(n_ticks=1, n_checks=2, n_mitigations=2,
                               n_failed_mitigations=1, migrated_gb=6.0,
                               migration_time_s=1.2,
                               mitigated_vm_ids=["y", "z"])
        merged = OnlineControlStats().add(a).add(b)
        assert merged.n_ticks == 3
        assert merged.n_checks == 7
        assert merged.n_mitigations == 3
        assert merged.n_failed_mitigations == 1
        assert merged.migrated_gb == pytest.approx(10.0)
        assert merged.mitigated_vm_ids == ["x", "y", "z"]
        assert merged.mean_mitigation_s == pytest.approx(2.0 / 3.0)
        assert OnlineControlStats().mean_mitigation_s == 0.0

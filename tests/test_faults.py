"""EMC fault injection and graceful pool degradation (DESIGN.md section 11).

Lock-down for the ``faults=FaultSchedule(...)`` replay stage:

* **Differential**: an empty schedule routes the replay through the
  fault-aware loop but must stay byte-identical to the static replay --
  on the single-cluster array engine, composed with the online control
  loop, and through the cross-shard pump on both topologies.
* **Determinism**: seeded schedules replay bit-identically across
  process-pool vs serial fleet fan-out (``as_dict`` canonical forms).
* **Degradation ladder**: pool-to-local first, live migration second,
  recorded kill last -- every affected VM accounted, never silently
  dropped; killing a spanning group yields nonzero stranding and blast
  radius with no negative ledger values.
* **Ledger invariants**: free/used/peak never negative across arbitrary
  degrade/allocate/release/repair interleavings.
"""

import random

import numpy as np
import pytest

from repro.cluster import (
    ClusterSimulator,
    ServerConfig,
    TraceGenConfig,
    TraceGenerator,
)
from repro.cluster.faults import (
    FaultEvent,
    FaultImpactStats,
    FaultSchedule,
)
from repro.cluster.fleet import (
    FleetSimulator,
    PoolTopology,
    static_policy_factory,
)
from repro.cluster.pool_topology import PoolGroupLedger, replay_crossshard
from repro.core.control_plane.online import OnlineControlConfig
from repro.core.policies import StaticFractionPolicy


@pytest.fixture(scope="module")
def policy():
    return StaticFractionPolicy(fraction=0.3)


@pytest.fixture(scope="module")
def trace():
    cfg = TraceGenConfig(n_servers=24, duration_days=1.0,
                         mean_lifetime_hours=2.0,
                         target_core_utilization=0.85, seed=11)
    return TraceGenerator(cfg).generate()


def make_simulator(**kwargs):
    defaults = dict(n_servers=24, pool_size_sockets=8,
                    constrain_memory=False, sample_interval_s=3600.0,
                    engine="array")
    defaults.update(kwargs)
    return ClusterSimulator(**defaults)


def assert_results_identical(a, b):
    assert np.array_equal(a.sample_buffer.rows(), b.sample_buffer.rows())
    assert a.server_peak_local_gb == b.server_peak_local_gb
    assert a.server_peak_total_gb == b.server_peak_total_gb
    assert a.pool_peak_gb == b.pool_peak_gb
    assert a.placed_vms == b.placed_vms
    assert a.rejected_vms == b.rejected_vms
    assert a.total_memory_gb_allocated == b.total_memory_gb_allocated


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0.0, "explode", 0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            FaultEvent(-1.0, "fail", 0)

    @pytest.mark.parametrize("severity", [0.0, -0.5, 1.5])
    def test_severity_bounds(self, severity):
        with pytest.raises(ValueError, match="severity"):
            FaultEvent(0.0, "fail", 0, severity=severity)

    def test_negative_group_and_shard_rejected(self):
        with pytest.raises(ValueError, match="group"):
            FaultEvent(0.0, "fail", -1)
        with pytest.raises(ValueError, match="shard"):
            FaultEvent(0.0, "fail", 0, shard=-1)


class TestFaultSchedule:
    def test_events_time_sorted_stably(self):
        sched = FaultSchedule([
            FaultEvent(10.0, "repair", 1),
            FaultEvent(5.0, "fail", 0),
            FaultEvent(10.0, "fail", 2),
        ])
        assert [(e.time_s, e.kind) for e in sched] == [
            (5.0, "fail"), (10.0, "repair"), (10.0, "fail")]
        assert len(sched) == 3

    def test_retry_budget_validated(self):
        with pytest.raises(ValueError, match="migration_retry_budget"):
            FaultSchedule(migration_retry_budget=0)

    def test_non_event_rejected(self):
        with pytest.raises(TypeError):
            FaultSchedule([("fail", 0)])

    def test_seeded_is_deterministic(self):
        kwargs = dict(groups=(0, 1, 2), horizon_s=86400.0,
                      mean_time_between_failures_s=20000.0,
                      repair_delay_s=5000.0, seed=7)
        a = FaultSchedule.seeded(**kwargs)
        b = FaultSchedule.seeded(**kwargs)
        assert [e for e in a] == [e for e in b]
        assert len(a) > 0
        # Different seed, different timeline.
        c = FaultSchedule.seeded(**{**kwargs, "seed": 8})
        assert [e for e in a] != [e for e in c]

    def test_seeded_repairs_paired_inside_horizon(self):
        sched = FaultSchedule.seeded(groups=(0,), horizon_s=86400.0,
                                     mean_time_between_failures_s=10000.0,
                                     repair_delay_s=4000.0, seed=1)
        fails = [e for e in sched if e.kind == "fail"]
        repairs = [e for e in sched if e.kind == "repair"]
        assert len(fails) - len(repairs) in (0, 1)
        for e in sched:
            assert 0.0 <= e.time_s < 86400.0

    def test_for_shard_filters_and_rehomes(self):
        sched = FaultSchedule([
            FaultEvent(1.0, "fail", 0, shard=0),
            FaultEvent(2.0, "fail", 1, shard=1),
            FaultEvent(3.0, "repair", 1, shard=1),
        ], migration_retry_budget=5)
        sub = sched.for_shard(1)
        assert [(e.time_s, e.kind, e.group, e.shard) for e in sub] == [
            (2.0, "fail", 1, 0), (3.0, "repair", 1, 0)]
        assert sub.migration_retry_budget == 5
        assert sched.for_shard(2).events == ()

    def test_groups_listing(self):
        sched = FaultSchedule([FaultEvent(1.0, "fail", 3),
                               FaultEvent(2.0, "fail", 1),
                               FaultEvent(3.0, "repair", 3)])
        assert sched.groups() == (1, 3)

    def test_unknown_group_rejected_at_replay(self, trace, policy):
        sched = FaultSchedule([FaultEvent(0.0, "fail", 99)])
        with pytest.raises(ValueError, match="do not exist"):
            make_simulator().run(trace, policy, faults=sched)

    def test_object_engine_rejected(self, trace, policy):
        with pytest.raises(ValueError, match="array"):
            make_simulator(engine="object").run(
                trace, policy, faults=FaultSchedule())


class TestLedgerDegradation:
    def test_degrade_and_repair_roundtrip(self):
        ledger = PoolGroupLedger({0: 100.0, 1: 100.0})
        ledger.used_gb[0] = 30.0
        ledger.free_gb[0] = 70.0
        deficit = ledger.degrade(0, 1.0)
        assert deficit == pytest.approx(30.0)
        assert ledger.capacity_gb[0] == 0.0
        assert ledger.free_gb[0] == 0.0
        assert ledger.is_degraded(0)
        assert ledger.degraded_groups == (0,)
        ledger.repair(0)
        assert ledger.capacity_gb[0] == 100.0
        assert ledger.free_gb[0] == pytest.approx(70.0)
        assert not ledger.is_degraded(0)

    def test_partial_loss(self):
        ledger = PoolGroupLedger({0: 100.0})
        ledger.used_gb[0] = 40.0
        ledger.free_gb[0] = 60.0
        deficit = ledger.degrade(0, 0.5)
        assert ledger.capacity_gb[0] == pytest.approx(50.0)
        assert ledger.free_gb[0] == pytest.approx(10.0)
        assert deficit == 0.0

    def test_double_degrade_cuts_from_healthy(self):
        """Severity always applies to *healthy* capacity, not compounding."""
        ledger = PoolGroupLedger({0: 100.0})
        ledger.degrade(0, 0.5)
        ledger.degrade(0, 0.25)
        assert ledger.capacity_gb[0] == pytest.approx(75.0)
        ledger.repair(0)
        assert ledger.capacity_gb[0] == 100.0

    def test_degrade_validation(self):
        ledger = PoolGroupLedger({0: 100.0})
        with pytest.raises(KeyError):
            ledger.degrade(5, 1.0)
        with pytest.raises(ValueError):
            ledger.degrade(0, 0.0)
        with pytest.raises(ValueError):
            ledger.degrade(0, 1.5)

    def test_repair_without_degrade_is_noop(self):
        ledger = PoolGroupLedger({0: 100.0})
        ledger.free_gb[0] = 60.0
        ledger.used_gb[0] = 40.0
        ledger.repair(0)
        assert ledger.capacity_gb[0] == 100.0
        assert ledger.free_gb[0] == 60.0

    def test_resync_clamps_only_degraded(self):
        ledger = PoolGroupLedger({0: 100.0, 1: 100.0})
        ledger.used_gb[0] = 20.0
        ledger.degrade(0, 1.0)
        # Engine-style unconditional release credit overshoots...
        ledger.used_gb[0] = 10.0
        ledger.free_gb[0] += 10.0
        ledger.resync(0)
        assert ledger.free_gb[0] == 0.0  # ...and resync re-clamps it.
        ledger.free_gb[1] = 55.0
        ledger.resync(1)  # healthy group untouched
        assert ledger.free_gb[1] == 55.0

    def test_infinite_capacity_partial_loss_stays_infinite(self):
        ledger = PoolGroupLedger({0: float("inf")})
        ledger.degrade(0, 0.5)
        assert ledger.capacity_gb[0] == float("inf")
        ledger.degrade(0, 1.0)
        assert ledger.capacity_gb[0] == 0.0

    def test_property_style_invariants_random_cycles(self):
        """free/used/peak never negative under random engine-style traffic
        interleaved with degrade/resync/repair, on a multi-group ledger."""
        rng = random.Random(42)
        ledger = PoolGroupLedger({g: 200.0 for g in range(4)})
        live = {g: [] for g in range(4)}
        for _ in range(2000):
            g = rng.randrange(4)
            op = rng.random()
            if op < 0.45:  # engine draw
                want = rng.uniform(1.0, 40.0)
                if ledger.free_gb[g] >= want:
                    ledger.free_gb[g] -= want
                    ledger.used_gb[g] += want
                    ledger.peak_gb[g] = max(ledger.peak_gb[g],
                                            ledger.used_gb[g])
                    live[g].append(want)
            elif op < 0.8 and live[g]:  # engine release (+ resync clamp)
                amount = live[g].pop(rng.randrange(len(live[g])))
                ledger.used_gb[g] -= amount
                ledger.free_gb[g] += amount
                ledger.resync(g)
            elif op < 0.9:
                ledger.degrade(g, rng.choice([0.25, 0.5, 1.0]))
            else:
                ledger.repair(g)
            for group in range(4):
                assert ledger.free_gb[group] >= 0.0
                assert ledger.used_gb[group] >= -1e-9
                assert ledger.peak_gb[group] >= 0.0
                if ledger.is_degraded(group):
                    assert (ledger.free_gb[group]
                            <= ledger.capacity_gb[group] + 1e-9)


class TestEmptyScheduleByteIdentity:
    """An empty schedule activates the fault-aware loop; output must not move."""

    def test_single_cluster(self, trace, policy):
        static = make_simulator().run(trace, policy)
        faulted = make_simulator().run(trace, policy, faults=FaultSchedule())
        assert_results_identical(static, faulted)
        assert static.fault_stats is None
        stats = faulted.fault_stats
        assert stats is not None
        assert stats.n_fail_events == 0
        assert stats.vms_affected == 0
        assert stats.as_dict() == FaultImpactStats().as_dict()

    def test_single_cluster_constrained(self, trace, policy):
        kwargs = dict(constrain_memory=True, pool_capacity_gb_per_group=600.0)
        static = make_simulator(**kwargs).run(trace, policy)
        faulted = make_simulator(**kwargs).run(trace, policy,
                                               faults=FaultSchedule())
        assert_results_identical(static, faulted)

    def test_composes_with_online_loop(self, trace, policy):
        online = OnlineControlConfig(qos_threshold_percent=5.0)
        plain = make_simulator().run(trace, policy, online=online)
        faulted = make_simulator().run(trace, policy, online=online,
                                       faults=FaultSchedule())
        assert_results_identical(plain, faulted)
        assert plain.online_stats.n_mitigations == \
            faulted.online_stats.n_mitigations
        assert plain.online_stats.mitigated_vm_ids == \
            faulted.online_stats.mitigated_vm_ids

    @pytest.mark.parametrize("topology", ["per_shard", "spanning"])
    def test_crossshard_topologies(self, policy, topology):
        cfgs = [
            TraceGenConfig(cluster_id=f"fb-{i}", n_servers=8,
                           duration_days=0.6, mean_lifetime_hours=2.0,
                           target_core_utilization=0.85, seed=21 + i)
            for i in range(2)
        ]
        traces = [TraceGenerator(cfg).generate() for cfg in cfgs]
        topo = getattr(PoolTopology, topology)([8, 8], 2, 8)
        common = (traces, [policy, policy], [8, 8],
                  [cfg.server_config for cfg in cfgs], topo,
                  600.0, True, 3600.0)
        static_results, static_ledger = replay_crossshard(*common)
        faulted_results, faulted_ledger = replay_crossshard(
            *common, faults=FaultSchedule())
        for static, faulted in zip(static_results, faulted_results):
            assert_results_identical(static, faulted)
            assert faulted.fault_stats.n_fail_events == 0
        assert static_ledger.peak_gb == faulted_ledger.peak_gb
        assert static_ledger.free_gb == faulted_ledger.free_gb


def tight_fault_run(retry_budget=1, events=None):
    """A constrained replay whose failures exhaust the whole ladder."""
    srv = ServerConfig(name="tight", sockets=2, cores_per_socket=24,
                       dram_per_socket_gb=48.0)
    cfg = TraceGenConfig(n_servers=12, duration_days=1.0,
                         mean_lifetime_hours=6.0,
                         target_core_utilization=0.95, seed=13,
                         server_config=srv)
    trace = TraceGenerator(cfg).generate()
    if events is None:
        events = [FaultEvent(30000.0, "fail", 0),
                  FaultEvent(33000.0, "fail", 1)]
    sched = FaultSchedule(events, migration_retry_budget=retry_budget)
    sim = ClusterSimulator(n_servers=12, server_config=srv,
                           pool_size_sockets=8,
                           pool_capacity_gb_per_group=500.0,
                           constrain_memory=True, sample_interval_s=3600.0,
                           engine="array")
    return sim.run(trace, StaticFractionPolicy(fraction=0.6), faults=sched)


class TestDegradationLadder:
    def test_all_three_rungs_fire_and_account(self):
        result = tight_fault_run(retry_budget=1)
        stats = result.fault_stats
        assert stats.vms_migrated_local > 0
        assert stats.vms_live_migrated > 0
        assert stats.vms_killed > 0
        # Every affected VM resolved through exactly one rung (budget=1
        # means no VM can still be pending at the end).
        assert stats.vms_affected == (stats.vms_migrated_local
                                      + stats.vms_live_migrated
                                      + stats.vms_killed)
        assert stats.killed_gb > 0.0
        assert stats.stranded_gb > 0.0
        assert len(stats.killed_vm_ids) == stats.vms_killed
        assert len(set(stats.killed_vm_ids)) == stats.vms_killed
        assert 0.0 < stats.survival_rate < 1.0
        assert stats.n_unrecovered == 2  # no repairs scheduled

    def test_larger_retry_budget_kills_no_more(self):
        """More retries can only convert kills into migrations."""
        strict = tight_fault_run(retry_budget=1).fault_stats
        patient = tight_fault_run(retry_budget=6).fault_stats
        assert patient.vms_killed <= strict.vms_killed
        assert patient.survival_rate >= strict.survival_rate

    def test_repair_recovery_latency_recorded(self):
        result = tight_fault_run(events=[
            FaultEvent(30000.0, "fail", 0),
            FaultEvent(42000.0, "repair", 0),
        ])
        stats = result.fault_stats
        assert stats.n_fail_events == 1
        assert stats.n_repair_events == 1
        assert stats.n_recoveries == 1
        assert stats.n_unrecovered == 0
        assert stats.recovery_latency_s_total == pytest.approx(12000.0)
        assert stats.recovery_latency_s_max == pytest.approx(12000.0)
        assert stats.mean_recovery_latency_s == pytest.approx(12000.0)

    def test_partial_severity_strands_less(self):
        full = tight_fault_run(events=[
            FaultEvent(30000.0, "fail", 0, severity=1.0)]).fault_stats
        half = tight_fault_run(events=[
            FaultEvent(30000.0, "fail", 0, severity=0.5)]).fault_stats
        assert half.stranded_gb <= full.stranded_gb
        assert half.vms_affected <= full.vms_affected
        assert half.capacity_lost_gb <= full.capacity_lost_gb

    def test_stats_merge_matches_componentwise_sum(self):
        a = tight_fault_run(retry_budget=1).fault_stats
        b = tight_fault_run(events=[
            FaultEvent(30000.0, "fail", 0),
            FaultEvent(42000.0, "repair", 0)]).fault_stats
        merged = FaultImpactStats()
        merged.add(a)
        merged.add(b)
        assert merged.vms_killed == a.vms_killed + b.vms_killed
        assert merged.stranded_gb == pytest.approx(
            a.stranded_gb + b.stranded_gb)
        assert merged.n_recoveries == a.n_recoveries + b.n_recoveries
        assert merged.recovery_latency_s_max == max(
            a.recovery_latency_s_max, b.recovery_latency_s_max)
        for group in set(a.blast_radius_by_group) | set(
                b.blast_radius_by_group):
            assert merged.blast_radius_by_group[group] == (
                a.blast_radius_by_group.get(group, 0)
                + b.blast_radius_by_group.get(group, 0))


class TestSpanningGroupKill:
    def make_fleet_traces(self):
        srv = ServerConfig(name="tight", sockets=2, cores_per_socket=24,
                           dram_per_socket_gb=48.0)
        cfgs = [
            TraceGenConfig(cluster_id=f"sg-{i}", n_servers=6,
                           duration_days=0.8, mean_lifetime_hours=4.0,
                           target_core_utilization=0.95, seed=40 + i,
                           server_config=srv)
            for i in range(2)
        ]
        return cfgs, [TraceGenerator(cfg).generate() for cfg in cfgs]

    def test_spanning_group_failure_hits_both_shards(self):
        cfgs, traces = self.make_fleet_traces()
        topo = PoolTopology.spanning([6, 6], 2, 8)
        assert topo.spanning_group_ids == (1,)
        sched = FaultSchedule([FaultEvent(20000.0, "fail", 1)],
                              migration_retry_budget=1)
        policies = [StaticFractionPolicy(fraction=0.6)] * 2
        results, ledger = replay_crossshard(
            traces, policies, [6, 6], [cfg.server_config for cfg in cfgs],
            topo, 150.0, True, 3600.0, faults=sched)
        per_shard = [r.fault_stats for r in results]
        # Both shards' VMs land on the ladder; event-level stats live on
        # the group's home shard (shard 0) only, so merging cannot
        # double-count the spanning failure.
        assert per_shard[0].vms_affected > 0
        assert per_shard[1].vms_affected > 0
        assert per_shard[0].n_fail_events == 1
        assert per_shard[1].n_fail_events == 0
        assert per_shard[0].stranded_gb > 0.0
        assert per_shard[1].stranded_gb == 0.0
        blast = per_shard[0].blast_radius_by_group
        assert blast[1] == (per_shard[0].vms_affected
                            + per_shard[1].vms_affected)
        assert per_shard[1].blast_radius_by_group == {}
        for group in ledger.capacity_gb:
            assert ledger.free_gb[group] >= 0.0
            assert ledger.used_gb[group] >= -1e-9
            assert ledger.peak_gb[group] >= 0.0
        assert ledger.capacity_gb[1] == 0.0  # still failed at the end

    def test_fleet_merge_attributes_spanning_failure_once(self):
        cfgs, traces = self.make_fleet_traces()
        topo = PoolTopology.spanning([6, 6], 2, 8)
        sched = FaultSchedule([FaultEvent(20000.0, "fail", 1)],
                              migration_retry_budget=1)
        fleet = FleetSimulator(cfgs, pool_capacity_gb_per_group=150.0,
                               constrain_memory=True, pool_topology=topo)
        result = fleet.run(static_policy_factory(fraction=0.6),
                           traces=traces, compute_baseline=False,
                           faults=sched)
        merged = result.fault_stats
        assert merged.n_fail_events == 1
        assert merged.vms_affected > 0
        assert merged.stranded_gb > 0.0
        assert merged.blast_radius_by_group == {1: merged.vms_affected}


class TestFleetDeterminism:
    def run_fleet(self, workers):
        base = TraceGenConfig(n_servers=8, duration_days=0.5,
                              mean_lifetime_hours=2.0,
                              target_core_utilization=0.9, seed=7)
        sched = FaultSchedule.seeded(
            groups=(0, 1), horizon_s=0.5 * 86400.0,
            mean_time_between_failures_s=15000.0, repair_delay_s=6000.0,
            seed=0)
        events = []
        for i, e in enumerate(sched.events):
            events.append(FaultEvent(e.time_s, e.kind, e.group, e.severity,
                                     shard=i % 2))
        sharded = FaultSchedule(events)
        fleet = FleetSimulator.sharded(2, base, pool_size_sockets=8,
                                       pool_capacity_gb_per_group=500.0,
                                       constrain_memory=True,
                                       max_workers=workers)
        with fleet:
            return fleet.run(static_policy_factory(fraction=0.4),
                             compute_baseline=False, faults=sharded)

    def test_process_pool_matches_serial(self):
        serial = self.run_fleet(None)
        pooled = self.run_fleet(2)
        assert serial.fault_stats.as_dict() == pooled.fault_stats.as_dict()
        assert serial.fault_stats.n_fail_events > 0
        for a, b in zip(serial.shards, pooled.shards):
            assert a.result.fault_stats.as_dict() == \
                b.result.fault_stats.as_dict()
            assert np.array_equal(a.result.sample_buffer.rows(),
                                  b.result.sample_buffer.rows())

    def test_shardwise_fleet_matches_single_cluster(self):
        """for_shard routing: each shard replays exactly its own events."""
        base = TraceGenConfig(n_servers=8, duration_days=0.5,
                              mean_lifetime_hours=2.0,
                              target_core_utilization=0.9, seed=7)
        sched = FaultSchedule([FaultEvent(15000.0, "fail", 0, shard=1)])
        fleet = FleetSimulator.sharded(2, base, pool_size_sockets=8,
                                       pool_capacity_gb_per_group=500.0,
                                       constrain_memory=True)
        result = fleet.run(static_policy_factory(fraction=0.4),
                           compute_baseline=False, faults=sched)
        shard0, shard1 = (s.result.fault_stats for s in result.shards)
        assert shard0.n_fail_events == 0
        assert shard0.vms_affected == 0
        assert shard1.n_fail_events == 1
        # The addressed shard replayed alone reproduces the same impact.
        cfg = fleet.shard_configs[1]
        solo = ClusterSimulator(
            n_servers=cfg.n_servers, server_config=cfg.server_config,
            pool_size_sockets=8, pool_capacity_gb_per_group=500.0,
            constrain_memory=True, sample_interval_s=3600.0, engine="array",
        ).run(TraceGenerator(cfg).generate_bulk(),
              StaticFractionPolicy(fraction=0.4),
              faults=sched.for_shard(1))
        assert solo.fault_stats.as_dict() == shard1.as_dict()

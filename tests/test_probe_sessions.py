"""Reusable probe-pool sessions: reuse, invalidation, and lifecycle.

The sessions behind ``PoolDimensioner.evaluate_capacity_search`` and
``FleetSimulator.capacity_search`` used to spawn a fresh
``ProcessPoolExecutor`` per call; they now live across calls (one worker
pool, one shipped trace per input set).  The contracts tested here:

* reused sessions return ``PoolSavings`` identical to fresh-executor runs;
* sessions are invalidated when the trace/input set or the owner's
  configuration changes;
* pools shut down on every exception path, ``close()`` is idempotent, and
  the context-manager protocol closes on exit.
"""

import pytest

from repro.cluster.fleet import FleetSimulator, static_policy_factory
from repro.cluster.pool import FixedFractionPolicy, PoolDimensioner
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator

N_SERVERS = 6


@pytest.fixture(scope="module")
def trace():
    cfg = TraceGenConfig(cluster_id="sess", n_servers=N_SERVERS,
                         duration_days=0.3, mean_lifetime_hours=2.0,
                         target_core_utilization=0.85, seed=11)
    return TraceGenerator(cfg).generate_bulk()


def fleet_config(**kwargs):
    defaults = dict(cluster_id="sess-fleet", n_servers=4, duration_days=0.25,
                    mean_lifetime_hours=2.0, target_core_utilization=0.85,
                    seed=9)
    defaults.update(kwargs)
    return TraceGenConfig(**defaults)


class BoomPolicy:
    """Policy whose batch path always fails (exception-path probe)."""

    def __call__(self, record):
        raise RuntimeError("boom")

    def decide_batch(self, trace):
        raise RuntimeError("boom")


class TestDimensionerSession:
    def test_sequential_session_reused_across_grid(self, trace):
        dim = PoolDimensioner(n_servers=N_SERVERS, search_steps=3)
        policy = FixedFractionPolicy(0.3)
        first = dim.evaluate_capacity_search(trace, 4, policy)
        session = dim._probe_session
        assert session is not None
        second = dim.evaluate_capacity_search(trace, 8, policy)
        assert dim._probe_session is session
        # Fresh dimensioners (fresh sessions) agree exactly.
        fresh = PoolDimensioner(n_servers=N_SERVERS, search_steps=3)
        assert first == fresh.evaluate_capacity_search(trace, 4,
                                                       FixedFractionPolicy(0.3))
        fresh2 = PoolDimensioner(n_servers=N_SERVERS, search_steps=3)
        assert second == fresh2.evaluate_capacity_search(
            trace, 8, FixedFractionPolicy(0.3)
        )

    def test_parallel_session_reused_and_identical(self, trace):
        dim = PoolDimensioner(n_servers=N_SERVERS, search_steps=3,
                              max_workers=2)
        policy = FixedFractionPolicy(0.3)
        with dim:
            first = dim.evaluate_capacity_search(trace, 4, policy)
            session = dim._probe_session
            assert session is not None and session.parallel
            # Same session across pool sizes *and* across policies (the
            # policy ships with each probe task, not with the executor).
            second = dim.evaluate_capacity_search(trace, 8, policy)
            third = dim.evaluate_capacity_search(trace, 4,
                                                 FixedFractionPolicy(0.15))
            assert dim._probe_session is session
        assert dim._probe_session is None  # context manager closed it
        sequential = PoolDimensioner(n_servers=N_SERVERS, search_steps=3)
        assert first == sequential.evaluate_capacity_search(
            trace, 4, FixedFractionPolicy(0.3)
        )
        assert second == sequential.evaluate_capacity_search(
            trace, 8, FixedFractionPolicy(0.3)
        )
        assert third == sequential.evaluate_capacity_search(
            trace, 4, FixedFractionPolicy(0.15)
        )

    def test_new_trace_invalidates_session(self, trace):
        dim = PoolDimensioner(n_servers=N_SERVERS, search_steps=2)
        dim.evaluate_capacity_search(trace, 4, FixedFractionPolicy(0.2))
        session = dim._probe_session
        other = TraceGenerator(TraceGenConfig(
            cluster_id="other", n_servers=N_SERVERS, duration_days=0.2,
            seed=5,
        )).generate_bulk()
        dim.evaluate_capacity_search(other, 4, FixedFractionPolicy(0.2))
        assert dim._probe_session is not session
        assert dim._probe_session_trace is other

    def test_config_change_invalidates_memoised_outcomes(self, trace):
        dim = PoolDimensioner(n_servers=N_SERVERS, search_steps=2)
        loose = dim.evaluate_capacity_search(trace, 4, FixedFractionPolicy(0.2))
        session = dim._probe_session
        # A config change must not let stale memoised outcomes answer for a
        # different cluster shape.
        dim.sample_interval_s = 1800.0
        dim.evaluate_capacity_search(trace, 4, FixedFractionPolicy(0.2))
        assert dim._probe_session is not session
        assert dim._probe_session_fingerprint == dim._session_fingerprint()
        # Sanity: the searches agree with fresh dimensioners at each config.
        fresh = PoolDimensioner(n_servers=N_SERVERS, search_steps=2)
        assert loose == fresh.evaluate_capacity_search(
            trace, 4, FixedFractionPolicy(0.2)
        )

    def test_inplace_policy_mutation_invalidates_memos(self, trace):
        """Memo keys are value-based: mutating a policy must not serve the
        pre-mutation outcome from a reused session."""
        dim = PoolDimensioner(n_servers=N_SERVERS, search_steps=3)
        policy = FixedFractionPolicy(0.3)
        before = dim.evaluate_capacity_search(trace, 4, policy)
        policy.fraction = 0.05
        after = dim.evaluate_capacity_search(trace, 4, policy)
        fresh = PoolDimensioner(n_servers=N_SERVERS, search_steps=3)
        expected = fresh.evaluate_capacity_search(trace, 4,
                                                  FixedFractionPolicy(0.05))
        assert after == expected
        assert after.average_pool_fraction != before.average_pool_fraction

    def test_inplace_mutation_parallel_session(self, trace):
        dim = PoolDimensioner(n_servers=N_SERVERS, search_steps=3,
                              max_workers=2)
        with dim:
            policy = FixedFractionPolicy(0.3)
            dim.evaluate_capacity_search(trace, 4, policy)
            policy.fraction = 0.05
            after = dim.evaluate_capacity_search(trace, 4, policy)
        fresh = PoolDimensioner(n_servers=N_SERVERS, search_steps=3)
        assert after == fresh.evaluate_capacity_search(
            trace, 4, FixedFractionPolicy(0.05)
        )

    def test_exception_closes_session(self, trace):
        dim = PoolDimensioner(n_servers=N_SERVERS, search_steps=2)
        with pytest.raises(RuntimeError, match="boom"):
            dim.evaluate_capacity_search(trace, 4, BoomPolicy())
        assert dim._probe_session is None

    def test_close_is_idempotent(self, trace):
        dim = PoolDimensioner(n_servers=N_SERVERS, search_steps=2)
        dim.evaluate_capacity_search(trace, 4, FixedFractionPolicy(0.2))
        dim.close()
        dim.close()
        assert dim._probe_session is None
        # Still usable after close: a fresh session is built lazily.
        result = dim.evaluate_capacity_search(trace, 4, FixedFractionPolicy(0.2))
        assert result.pool_size_sockets == 4


class TestFleetSession:
    def test_parallel_session_reused_and_identical(self):
        factory = static_policy_factory(fraction=0.25, seed=1)
        sequential = FleetSimulator.sharded(2, fleet_config(),
                                            pool_size_sockets=4)
        traces = sequential.generate_traces()
        ref4 = sequential.capacity_search(factory, traces=traces,
                                          search_steps=3)
        ref2 = sequential.capacity_search(factory, traces=traces,
                                          search_steps=3, pool_size_sockets=2)

        with FleetSimulator.sharded(2, fleet_config(), pool_size_sockets=4,
                                    max_workers=2) as fleet:
            got4 = fleet.capacity_search(factory, traces=traces,
                                         search_steps=3)
            session = fleet._probe_session
            assert session is not None
            got2 = fleet.capacity_search(factory, traces=traces,
                                         search_steps=3, pool_size_sockets=2)
            assert fleet._probe_session is session
            # A different policy factory reuses the session too.
            other = fleet.capacity_search(
                static_policy_factory(fraction=0.1, seed=2),
                traces=traces, search_steps=3,
            )
            assert fleet._probe_session is session
        assert got4.savings == ref4.savings
        assert got2.savings == ref2.savings
        assert other.savings == sequential.capacity_search(
            static_policy_factory(fraction=0.1, seed=2),
            traces=traces, search_steps=3,
        ).savings

    def test_new_traces_invalidate_session_and_inputs(self):
        factory = static_policy_factory(fraction=0.25, seed=1)
        fleet = FleetSimulator.sharded(2, fleet_config(), pool_size_sockets=4,
                                       max_workers=2)
        traces = fleet.generate_traces()
        fleet.capacity_search(factory, traces=traces, search_steps=2)
        session = fleet._probe_session
        inputs = fleet._capacity_inputs
        assert inputs is not None
        other = fleet.generate_traces()
        fleet.capacity_search(factory, traces=other, search_steps=2)
        assert fleet._probe_session is not session
        assert fleet._capacity_inputs is not inputs
        fleet.close()

    def test_exception_closes_fleet_session(self):
        def boom_factory(shard_index):
            return BoomPolicy()

        fleet = FleetSimulator.sharded(2, fleet_config(), pool_size_sockets=4)
        traces = fleet.generate_traces()
        with pytest.raises(RuntimeError, match="boom"):
            fleet.capacity_search(boom_factory, traces=traces, search_steps=2)
        assert fleet._probe_session is None

    def test_run_executor_reused_across_calls(self):
        factory = static_policy_factory(fraction=0.25, seed=1)
        with FleetSimulator.sharded(2, fleet_config(), pool_size_sockets=4,
                                    max_workers=2) as fleet:
            traces = fleet.generate_traces()
            first = fleet.run(factory, traces=traces)
            pool = fleet._shard_pool
            assert pool is not None
            second = fleet.run(factory, traces=traces)
            assert fleet._shard_pool is pool
            baselines = fleet.compute_baselines(traces)
            assert fleet._shard_pool is pool
        assert fleet._shard_pool is None
        assert first.savings == second.savings
        serial = FleetSimulator.sharded(2, fleet_config(), pool_size_sockets=4)
        assert serial.run(factory, traces=traces).savings == first.savings
        assert serial.compute_baselines(traces) == baselines


class TestTopologySessionDifferential:
    """Parallel topology capacity search == sequential, stats drained.

    Spanning topologies route their capacity probes through the fleet
    probe session as *whole-fleet* worker tasks (a merged cross-shard
    replay cannot split by shard); the parallel path must reproduce the
    sequential search verbatim, memoise warm repeats, and surface
    speculation stats only when a session ran.
    """

    N_SHARDS = 3
    N_SERVERS = 8

    @pytest.fixture(scope="class")
    def shard_configs(self):
        from repro.cluster.tracegen import fleet_shard_configs
        base = fleet_config(cluster_id="topo-sess", n_servers=self.N_SERVERS,
                            duration_days=0.3, mean_lifetime_hours=1.2,
                            target_core_utilization=0.92, seed=11)
        return fleet_shard_configs(self.N_SHARDS, base)

    @staticmethod
    def _factory(shard):
        from repro.core.policies import StaticFractionPolicy
        return StaticFractionPolicy(fraction=0.35, seed=1000 + shard)

    def _search(self, fleet, topo):
        return fleet.capacity_search(policy_factory=self._factory,
                                     search_steps=3, pool_topology=topo)

    @pytest.mark.parametrize("topo_name", ["per_shard", "spanning"])
    def test_parallel_matches_sequential(self, shard_configs, topo_name):
        from repro.cluster.pool_topology import PoolTopology
        make = (PoolTopology.per_shard if topo_name == "per_shard"
                else PoolTopology.spanning)
        topo = make([self.N_SERVERS] * self.N_SHARDS, 2, 16)
        rs = self._search(FleetSimulator(shard_configs), topo)
        with FleetSimulator(shard_configs, max_workers=2) as par_fleet:
            rp = self._search(par_fleet, topo)
            rp2 = self._search(par_fleet, topo)  # warm: memoised outcomes
        assert rs.savings == rp.savings
        assert rs.baseline_per_server_gb == rp.baseline_per_server_gb
        assert rs.pooled_per_server_gb == rp.pooled_per_server_gb
        assert rs.per_shard_pool_capacity_gb == rp.per_shard_pool_capacity_gb
        assert rs.pool_capacity_gb_by_group == rp.pool_capacity_gb_by_group
        assert rs.rejection_budget == rp.rejection_budget
        assert rs.total_vms == rp.total_vms
        assert rp2.savings == rp.savings
        assert rp2.pooled_per_server_gb == rp.pooled_per_server_gb
        # Stats contract: sequential searches never speculate; parallel
        # searches drain a fresh SpeculationStats per call.
        assert rs.speculation is None
        assert rp.speculation is not None
        assert rp.speculation.issued >= 0
        assert rp2.speculation is not None


class TestAdaptiveSpeculationDeterminism:
    """Speculation depth never changes probe verdicts or dimensioning.

    Probes are deterministic and memoised per key, so speculation only
    changes which outcomes are warm when the bisection asks for them.
    Pinning the controller to depths 1/2/4 and letting it adapt must all
    yield the sequential search's exact ``PoolSavings``.
    """

    @pytest.fixture(scope="class")
    def spec_trace(self):
        cfg = TraceGenConfig(cluster_id="spec", n_servers=8,
                             duration_days=0.3, mean_lifetime_hours=1.2,
                             target_core_utilization=0.92, seed=5)
        return TraceGenerator(cfg).generate()

    def _search(self, trace, workers, depth=None, monkeypatch=None):
        import repro.cluster.pool as poolmod
        dim = PoolDimensioner(n_servers=8, search_steps=3,
                              max_workers=workers)
        if depth is not None:
            dim.probe_session(trace)._spec_depth = depth
            monkeypatch.setattr(poolmod, "_SPEC_WINDOW", 10**9)
        try:
            savings = dim.evaluate_capacity_search(
                trace, 16, FixedFractionPolicy(fraction=0.35))
            return savings, dim.last_speculation
        finally:
            dim.close()

    def test_depth_never_changes_dimensioning(self, spec_trace, monkeypatch):
        base, spec0 = self._search(spec_trace, None)
        assert spec0 is not None and spec0.issued == 0  # sequential: zeros
        for depth in (1, 2, 4):
            s, spec = self._search(spec_trace, 3, depth, monkeypatch)
            assert s == base, f"depth={depth} changed the dimensioning"
            assert spec is not None
            monkeypatch.undo()
        s, spec = self._search(spec_trace, 3)  # adaptive controller
        assert s == base
        assert spec is not None
        assert spec.issued == spec.hits + spec.wasted

    def test_last_speculation_drained_per_call(self, spec_trace):
        with PoolDimensioner(n_servers=8, search_steps=3,
                             max_workers=2) as dim:
            dim.evaluate_capacity_search(spec_trace, 16,
                                         FixedFractionPolicy(fraction=0.35))
            first = dim.last_speculation
            dim.evaluate_capacity_search(spec_trace, 16,
                                         FixedFractionPolicy(fraction=0.35))
            second = dim.last_speculation
        assert first is not None and second is not None
        assert first is not second  # drained, not accumulated


class TestModelStateFingerprints:
    """Probe memo keys must track prediction-model state.

    Reused sessions memoise capacity probes keyed on a value-based
    fingerprint of the policy factory (``_probe_fingerprint``).  The
    prediction factory binds trained GBM/forest models, so retraining a
    model **in place** must change the fingerprint -- otherwise a reused
    session would keep serving capacity outcomes computed with the stale
    model.  Conversely the fingerprint must NOT change when only lazy
    prediction caches are populated, or every memo would be spuriously
    invalidated by the first predict call.
    """

    @staticmethod
    def _trained_policy(seed):
        from repro.core.policies import PredictionPolicy

        return PredictionPolicy.train(seed=seed, n_samples=256)

    def test_fingerprint_stable_across_predict(self, trace):
        import numpy as np

        from repro.cluster.pool import _probe_fingerprint

        policy = self._trained_policy(3)
        before = _probe_fingerprint(policy)
        assert before is not None
        policy.predict_slowdown_batch(trace, np.zeros(len(trace)))
        policy.decide_batch(trace)
        assert _probe_fingerprint(policy) == before

    def test_factory_fingerprint_tracks_in_place_retrain(self):
        from repro.cluster.fleet import prediction_policy_factory
        from repro.cluster.pool import _probe_fingerprint

        policy = self._trained_policy(3)
        factory = prediction_policy_factory(policy=policy)
        before = _probe_fingerprint(factory)
        assert before is not None  # partials must stay fingerprintable
        # Retrain the bound untouched-memory model in place: same objects,
        # new fitted state (as a real ``fit`` call would leave behind).
        other = self._trained_policy(4)
        policy.untouched_model.gbm.__dict__.update(
            other.untouched_model.gbm.__dict__)
        after = _probe_fingerprint(factory)
        assert after is not None
        assert after != before

    def test_session_token_invalidates_on_retrain(self):
        from repro.cluster.fleet import prediction_policy_factory
        from repro.cluster.pool import _ProbeSessionBase

        policy = self._trained_policy(3)
        factory = prediction_policy_factory(policy=policy)
        session = _ProbeSessionBase()
        token_before = session._token(factory)
        other = self._trained_policy(4)
        policy.untouched_model.gbm.__dict__.update(
            other.untouched_model.gbm.__dict__)
        assert session._token(factory) != token_before

    def test_tree_pickles_exclude_fit_scratch(self):
        import pickle

        import numpy as np

        from repro.ml.tree import DecisionTreeRegressor

        rng = np.random.default_rng(0)
        X = rng.random((64, 3))
        y = X @ np.array([1.0, -2.0, 0.5])
        tree = DecisionTreeRegressor(max_depth=3, random_state=0).fit(X, y)
        before = pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)
        tree.predict(X)  # populates the lazy _flat arrays
        after = pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)
        assert before == after
        restored = pickle.loads(after)
        assert not hasattr(restored, "_encoded_y")
        assert restored._flat is None
        assert np.array_equal(restored.predict(X), tree.predict(X))

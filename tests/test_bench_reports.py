"""The committed BENCH_*.json reports honour their own recorded floors.

Every scale benchmark writes each perf floor it asserts next to the
measured value (``events_per_s`` / ``events_per_s_floor``, ``speedup`` /
``speedup_floor``, ...).  The CI bench-smoke job re-validates emitted and
committed reports with ``_bench_report.check_perf_floors``; this module
keeps that helper and the checked-in reports honest from the tier-1 suite
(no benchmark execution — the reports are just read back).
"""

import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

from _bench_report import check_perf_floors, validate_report  # noqa: E402

COMMITTED_REPORTS = sorted(BENCH_DIR.glob("BENCH_*.json"))


def test_committed_reports_exist():
    assert COMMITTED_REPORTS, "no committed BENCH_*.json reports found"


@pytest.mark.parametrize("path", COMMITTED_REPORTS,
                         ids=lambda p: p.stem)
def test_committed_report_schema_and_floors(path):
    report = validate_report(path)
    check_perf_floors(report, path.name)


def test_throughput_reports_carry_event_floors():
    """The replay-throughput reports must record events_per_s floors."""
    for stem in ("BENCH_cluster_scale_throughput", "BENCH_crossshard_scale"):
        report = validate_report(BENCH_DIR / f"{stem}.json")
        pairs = dict((m, (v, f)) for m, v, f in
                     check_perf_floors(report, stem))
        assert "events_per_s" in pairs, stem
        value, floor = pairs["events_per_s"]
        assert floor >= 200_000, stem  # PR 6 raised the recorded floor


def test_check_perf_floors_rejects_violation():
    with pytest.raises(ValueError, match="below recorded floor"):
        check_perf_floors({"speedup": 1.2, "speedup_floor": 1.5}, "r")


def test_check_perf_floors_rejects_orphan_floor():
    with pytest.raises(ValueError, match="missing"):
        check_perf_floors({"speedup_floor": 1.5}, "r")


def test_check_perf_floors_rejects_non_numeric():
    with pytest.raises(ValueError, match="numeric"):
        check_perf_floors({"speedup": "fast", "speedup_floor": 1.0}, "r")


def test_check_perf_floors_passes_and_lists_pairs():
    checked = check_perf_floors(
        {"events_per_s": 5e5, "events_per_s_floor": 2e5,
         "speedup": 2.0, "speedup_floor": 1.5, "n_vms": 10}, "r")
    assert checked == [("events_per_s", 5e5, 2e5), ("speedup", 2.0, 1.5)]

"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cxl.emc import EMCDevice
from repro.cxl.latency import LatencyModel
from repro.hypervisor.guest_os import GuestMemoryAllocator
from repro.hypervisor.numa import build_vm_topology
from repro.hypervisor.page_table import HypervisorPageTable
from repro.hypervisor.vm import VMInstance, VMRequest
from repro.ml.gbm import QuantileGradientBoostingRegressor
from repro.ml.metrics import insensitive_tradeoff_curve, mean_pinball_loss
from repro.ml.tree import DecisionTreeRegressor
from repro.workloads.catalog import build_catalog
from repro.workloads.sensitivity import SCENARIO_182, SCENARIO_222, slowdown_under_spill


CATALOG = build_catalog(seed=7)
WORKLOADS = list(CATALOG)


@given(pool_sockets=st.integers(min_value=2, max_value=128))
def test_pool_latency_always_exceeds_local(pool_sockets):
    model = LatencyModel()
    pond = model.pond_pool(pool_sockets).total_ns
    assert pond > model.local_dram().total_ns
    assert model.switch_only_pool(pool_sockets).total_ns >= pond


@given(
    cores=st.integers(min_value=1, max_value=64),
    local=st.floats(min_value=0.0, max_value=512.0),
    pool=st.floats(min_value=0.0, max_value=512.0),
)
def test_vm_topology_memory_is_conserved(cores, local, pool):
    if local + pool <= 0:
        return
    topo = build_vm_topology(cores=cores, local_memory_gb=local, pool_memory_gb=pool)
    assert np.isclose(topo.total_memory_gb, local + pool)
    assert topo.total_cores == cores
    assert topo.znuma_memory_gb <= pool + 1e-9


@given(
    memory=st.floats(min_value=1.0, max_value=256.0),
    local_fraction=st.floats(min_value=0.0, max_value=1.0),
    touched_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_vm_instance_accounting_invariants(memory, local_fraction, touched_fraction):
    local = memory * local_fraction
    request = VMRequest.create(cores=4, memory_gb=memory)
    vm = VMInstance(request=request, host_id="h", local_memory_gb=local,
                    pool_memory_gb=memory - local)
    vm.record_touch(memory * touched_fraction)
    assert 0.0 <= vm.untouched_memory_gb <= memory + 1e-9
    assert 0.0 <= vm.spilled_gb <= vm.pool_memory_gb + 1e-9
    assert np.isclose(vm.total_memory_gb, memory)


@given(
    vm_memory=st.floats(min_value=1.0, max_value=128.0),
    local_share=st.floats(min_value=0.0, max_value=1.0),
    touched_share=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=50)
def test_page_table_untouched_plus_touched_is_total(vm_memory, local_share, touched_share):
    table = HypervisorPageTable(vm_memory_gb=vm_memory,
                                local_memory_gb=vm_memory * local_share)
    table.touch_gb(vm_memory * touched_share)
    assert table.untouched_pages + table.ever_accessed_pages == table.n_pages
    assert 0.0 <= table.untouched_fraction <= 1.0


@given(
    working_set_fraction=st.floats(min_value=0.0, max_value=1.0),
    local_fraction=st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=50)
def test_guest_allocator_prefers_local_node(working_set_fraction, local_fraction):
    total = 64.0
    local = total * local_fraction
    pool = total - local
    topo = build_vm_topology(cores=4, local_memory_gb=local, pool_memory_gb=pool)
    allocator = GuestMemoryAllocator(topo)
    working_set = min(total * 0.95, total * working_set_fraction)
    profile = allocator.run_workload(working_set_gb=working_set)
    # The zNUMA node is only used once the local node is (nearly) full.
    local_free = allocator.free_gb(0)
    znuma_used = allocator.znuma_allocated_gb()
    assert znuma_used < 1e-6 or local_free < 1.0


@given(
    spill_a=st.floats(min_value=0.0, max_value=1.0),
    spill_b=st.floats(min_value=0.0, max_value=1.0),
    index=st.integers(min_value=0, max_value=len(WORKLOADS) - 1),
)
@settings(max_examples=80)
def test_spill_slowdown_is_monotone_and_bounded(spill_a, spill_b, index):
    workload = WORKLOADS[index]
    lo, hi = sorted((spill_a, spill_b))
    s_lo = slowdown_under_spill(workload, SCENARIO_182, lo)
    s_hi = slowdown_under_spill(workload, SCENARIO_182, hi)
    assert s_lo <= s_hi + 1e-9
    assert s_hi <= slowdown_under_spill(workload, SCENARIO_222, hi) + 1e-9


@given(st.integers(min_value=1, max_value=40))
@settings(max_examples=30)
def test_emc_slice_assignment_conserves_capacity(n_slices):
    emc = EMCDevice("emc-prop", capacity_gb=64, n_ports=4)
    emc.attach_host("h1")
    assigned = 0
    for _ in range(n_slices):
        if emc.free_slices == 0:
            break
        emc.assign_slice("h1")
        assigned += 1
    assert emc.assigned_gb == assigned
    assert emc.assigned_gb + emc.free_gb == emc.capacity_gb
    for slice_index in list(emc.slices_of("h1")):
        emc.release_slice("h1", slice_index)
    assert emc.free_gb == emc.capacity_gb


@given(
    scores=st.lists(st.floats(min_value=-10, max_value=10), min_size=5, max_size=60),
    pdm=st.floats(min_value=0.5, max_value=20.0),
)
@settings(max_examples=50)
def test_tradeoff_curve_outputs_are_valid_percentages(scores, pdm):
    rng = np.random.default_rng(0)
    slowdowns = rng.uniform(0, 40, size=len(scores))
    fractions, fps = insensitive_tradeoff_curve(np.array(scores), slowdowns, pdm)
    assert np.all((fractions >= 0) & (fractions <= 100))
    assert np.all((fps >= 0) & (fps <= 100))


@given(alpha=st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=10, deadline=None)
def test_quantile_gbm_coverage_tracks_alpha(alpha):
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(300, 2))
    y = X[:, 0] + rng.normal(0, 0.05, size=300)
    model = QuantileGradientBoostingRegressor(
        alpha=alpha, n_estimators=25, max_depth=2, min_samples_leaf=20, random_state=0
    ).fit(X, y)
    coverage = float(np.mean(model.predict(X) <= y))
    assert abs(coverage - (1.0 - alpha)) < 0.25


@given(
    y_true=st.lists(st.floats(min_value=0, max_value=1), min_size=3, max_size=30),
)
@settings(max_examples=50)
def test_pinball_loss_zero_for_perfect_predictions(y_true):
    y = np.array(y_true)
    assert mean_pinball_loss(y, y, alpha=0.3) == 0.0


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_regression_tree_predictions_bounded_by_targets(seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(80, 2))
    y = rng.uniform(-5, 5, size=80)
    tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
    pred = tree.predict(X)
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9

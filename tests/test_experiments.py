"""Integration tests for the experiment drivers (reduced problem sizes)."""

import numpy as np
import pytest

from repro.experiments import fig2_stranding, fig3_pool_size, fig4_5_sensitivity
from repro.experiments import fig7_8_latency, fig15_znuma, fig16_spill
from repro.experiments import fig17_latency_model, fig18_19_untouched
from repro.experiments import fig20_combined, fig21_end_to_end
from repro.experiments import offlining, untouched_distribution
from repro.workloads.catalog import build_catalog
from repro.workloads.sensitivity import SCENARIO_182


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(seed=7)


class TestStrandingExperiment:
    def test_stranding_grows_with_utilization(self):
        study = fig2_stranding.run_stranding_study(
            n_clusters=4, n_servers=8, duration_days=1.0, seed=3
        )
        assert len(study.buckets) >= 2
        means = [b.mean_stranded_percent for b in study.buckets]
        assert means[-1] >= means[0]
        assert study.fleet_max <= 100.0
        assert "stranded" in fig2_stranding.format_stranding_table(study)

    def test_rack_timeseries_shift_increases_stranding(self):
        series = fig2_stranding.run_rack_timeseries(
            n_racks=2, n_servers=6, duration_days=2.0, shift_day=1.0, seed=5
        )
        assert len(series) == 2
        for days, values in series.values():
            assert len(days) == len(values)


class TestPoolSizeExperiment:
    def test_required_dram_decreases_with_pool_size(self):
        study = fig3_pool_size.run_pool_size_study(
            n_servers=8, duration_days=1.0, pool_sizes=(2, 8, 16), seed=3
        )
        for fraction in study.fractions:
            row = [study.required_dram_percent(fraction, s) for s in study.pool_sizes]
            assert row[0] >= row[-1] - 1.0
            assert all(v <= 100.5 for v in row)

    def test_larger_fraction_saves_more(self):
        study = fig3_pool_size.run_pool_size_study(
            n_servers=8, duration_days=1.0, pool_sizes=(16,),
            fractions=(0.1, 0.5), seed=4
        )
        assert (study.required_dram_percent(0.5, 16)
                <= study.required_dram_percent(0.1, 16))


class TestSensitivityExperiment:
    def test_bucket_fractions_match_paper_shape(self, catalog):
        study = fig4_5_sensitivity.run_sensitivity_study(catalog=catalog)
        buckets = study.bucket_fractions("182")
        assert 0.15 <= buckets["below_1_percent"] <= 0.35
        assert buckets["below_5_percent"] >= buckets["below_1_percent"]
        buckets_222 = study.bucket_fractions("222")
        assert buckets_222["above_25_percent"] >= buckets["above_25_percent"]

    def test_cdf_is_monotone(self, catalog):
        study = fig4_5_sensitivity.run_sensitivity_study(catalog=catalog)
        grid, cdf = fig4_5_sensitivity.slowdown_cdf(study.slowdowns_182)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_class_summary_covers_all_classes(self, catalog):
        study = fig4_5_sensitivity.run_sensitivity_study(catalog=catalog)
        summary = study.class_summary("182")
        assert len(summary) == 9


class TestLatencyExperiment:
    def test_latency_study_matches_paper_numbers(self):
        study = fig7_8_latency.run_latency_study()
        assert study.pond_ns(8) == pytest.approx(155.0)
        assert study.pond_ns(16) == pytest.approx(180.0)
        assert study.pond_ns(64) >= 270.0
        assert study.reduction_vs_switch_only(16) == pytest.approx(1 / 3, abs=0.06)
        assert "Figures 7/8" in fig7_8_latency.format_latency_table(study)


class TestZNUMAExperiment:
    def test_traffic_to_znuma_is_tiny(self):
        results = fig15_znuma.run_znuma_study()
        assert len(results) == 4
        for result in results:
            assert result.znuma_traffic_percent < 1.0
            assert result.znuma_gb > 0


class TestSpillExperiment:
    def test_slowdown_grows_with_spill(self, catalog):
        study = fig16_spill.run_spill_study(catalog=catalog)
        medians = [study.distribution_stats(p)["median"] for p in study.spill_percents]
        assert medians == sorted(medians)
        assert study.distribution_stats(0.0)["median"] < 1.0
        assert study.distribution_stats(100.0)["max"] > 25.0


class TestModelExperiments:
    def test_latency_model_ordering(self, catalog):
        study = fig17_latency_model.run_latency_model_study(
            catalog=catalog, samples_per_workload=2, seed=11
        )
        rf = study.insensitive_at_2pct_fp["RandomForest"]
        memory = study.insensitive_at_2pct_fp["Memory-bound"]
        assert rf > memory
        assert rf >= 15.0

    def test_untouched_model_beats_strawman(self):
        dataset = fig18_19_untouched.build_untouched_dataset(n_vms=500, seed=9)
        study = fig18_19_untouched.run_untouched_model_study(
            dataset=dataset, n_estimators=25, seed=9
        )
        assert study.accuracy_gain > 1.0
        assert study.gbm_average_untouched_percent > 10.0

    def test_production_timeline_respects_target(self):
        timeline = fig18_19_untouched.run_production_timeline(
            n_days=3, vms_per_day=80, seed=13
        )
        assert len(timeline.days) == 2
        assert np.all(timeline.average_untouched_percent > 0)

    def test_combined_model_sweep(self, catalog):
        study = fig20_combined.run_combined_model_study(
            scenario=SCENARIO_182, catalog=catalog,
            error_budgets=(0.0, 2.0, 5.0), seed=15
        )
        assert np.all(np.diff(study.pool_dram_percent) >= -1e-9)
        assert study.pool_dram_at_misprediction(2.0) > 0.0


class TestEndToEndFleetMode:
    def test_sharded_study_produces_full_grid(self):
        study = fig21_end_to_end.run_end_to_end_study(
            n_servers=8, duration_days=1.0, pool_sizes=(4, 8),
            seed=3, n_shards=2,
        )
        assert study.pool_sizes == [4, 8]
        for policy in ("pond_182", "pond_222", "static_15pct"):
            for size in study.pool_sizes:
                required = study.required_dram_percent(policy, size)
                assert 0.0 < required <= 110.0
            assert study.misprediction_percent[policy] < 10.0
        assert "required overall DRAM" in fig21_end_to_end.format_end_to_end_table(study)

    def test_fleet_pool_scope_spans_shards(self):
        study = fig21_end_to_end.run_end_to_end_study(
            n_servers=6, duration_days=0.3, pool_sizes=(4, 8),
            seed=3, n_shards=2, pool_scope="fleet",
        )
        assert study.pool_sizes == [4, 8]
        for policy in ("pond_182", "pond_222", "static_15pct"):
            for size in study.pool_sizes:
                # Spanning provisioning can cost more than it saves at this
                # tiny scale; the grid just has to be fully populated.
                assert study.required_dram_percent(policy, size) > 0.0

    def test_pool_scope_validation(self):
        with pytest.raises(ValueError):
            fig21_end_to_end.run_end_to_end_study(pool_scope="rack")
        with pytest.raises(ValueError):
            fig21_end_to_end.run_end_to_end_study(n_shards=1,
                                                  pool_scope="fleet")


class TestEndToEndExperiment:
    def test_pond_beats_static_at_16_sockets(self):
        study = fig21_end_to_end.run_end_to_end_study(
            n_servers=16, duration_days=1.0, pool_sizes=(2, 16), seed=17
        )
        pond = study.savings_percent("pond_182", 16)
        static = study.savings_percent("static_15pct", 16)
        assert pond > static
        assert study.misprediction_percent["pond_182"] <= 5.0

    def test_savings_grow_with_pool_size(self):
        study = fig21_end_to_end.run_end_to_end_study(
            n_servers=16, duration_days=1.0, pool_sizes=(2, 16, 32), seed=18
        )
        required = [study.required_dram_percent("pond_182", s) for s in (2, 16, 32)]
        assert required[0] >= required[-1]


class TestOffliningAndUntouchedDistribution:
    def test_offlining_speeds_are_bounded(self):
        study = offlining.run_offlining_study(n_vm_cycles=60, seed=19)
        assert study.total_offlined_gb > 0
        assert study.percentile(50) < 110.0

    def test_untouched_distribution_median_near_half(self):
        study = untouched_distribution.run_untouched_distribution(
            n_clusters=3, vms_per_cluster=200, seed=21
        )
        assert 30.0 <= study.fleet_percentile(50) <= 70.0
        assert study.min_cluster_share_above(0.20) > 30.0

"""Regression tests for the simulator sampling/caching fixes and the indexed
scheduler hot path (sample/departure ordering, duplicate horizon samples,
``id()``-keyed caches, CSV defaults, and indexed-vs-linear equivalence)."""

import gc

import numpy as np
import pytest

from repro.cluster.pool import PoolDimensioner, fixed_fraction_policy
from repro.cluster.scheduler import VMScheduler
from repro.cluster.server import ClusterServer, ServerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.trace import ClusterTrace, VMTraceRecord
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator


def record(vm_id, arrival_s, lifetime_s, cores=2, memory_gb=8.0, **kwargs):
    return VMTraceRecord(
        vm_id=vm_id, cluster_id="test", arrival_s=arrival_s,
        lifetime_s=lifetime_s, cores=cores, memory_gb=memory_gb, **kwargs
    )


def bulk_trace(seed, n_servers=10, duration_days=0.6, utilization=0.85,
               mean_lifetime_hours=2.0):
    cfg = TraceGenConfig(
        cluster_id=f"rand-{seed}", n_servers=n_servers,
        duration_days=duration_days, target_core_utilization=utilization,
        mean_lifetime_hours=mean_lifetime_hours, seed=seed,
    )
    return TraceGenerator(cfg).generate_bulk()


class TestSampleDepartureOrdering:
    def test_sample_counts_vm_departing_before_next_arrival(self):
        """A VM still running at a sample time must be counted even if it
        departs before the next arrival (the old loop processed departures up
        to the *arrival* time before taking earlier samples)."""
        trace = ClusterTrace([
            record("vm-0", arrival_s=0.0, lifetime_s=4000.0),
            record("vm-1", arrival_s=5000.0, lifetime_s=100.0),
        ])
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace)
        times = result.sample_array("time_s")
        running = result.sample_array("running_vms")
        # Samples: t=0 (before the arrival at 0), t=3600, horizon t=5000
        # (taken after the final arrival, which is still running then).
        assert times.tolist() == [0.0, 3600.0, 5000.0]
        # vm-0 departs at 4000 > 3600: it must appear in the t=3600 sample.
        assert running.tolist() == [0, 1, 1]

    def test_departure_exactly_at_sample_time_is_excluded(self):
        trace = ClusterTrace([
            record("vm-0", arrival_s=0.0, lifetime_s=3600.0),
            record("vm-1", arrival_s=5000.0, lifetime_s=100.0),
        ])
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace)
        running = result.sample_array("running_vms")
        # vm-0 departs exactly at the t=3600 sample: departures at t are
        # applied before the sample at t.  The horizon sample at t=5000 counts
        # vm-1, which arrives then and is still running.
        assert running.tolist() == [0, 0, 1]

    def test_used_local_reflects_departures_between_arrivals(self):
        trace = ClusterTrace([
            record("vm-0", arrival_s=0.0, lifetime_s=4000.0, memory_gb=32.0),
            record("vm-1", arrival_s=7000.0, lifetime_s=7200.0, memory_gb=16.0),
            record("vm-2", arrival_s=8000.0, lifetime_s=100.0),
        ])
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace)
        by_time = dict(zip(result.sample_array("time_s"),
                           result.sample_array("used_local_gb")))
        assert by_time[3600.0] == pytest.approx(32.0)  # vm-0 still running
        assert by_time[7200.0] == pytest.approx(16.0)  # vm-0 gone, vm-1 up


class TestHorizonSampling:
    def test_horizon_sample_emitted_once_when_grid_lands_on_it(self):
        # Arrival span 7200 is an exact multiple of the interval: the old loop
        # recorded the 7200 s sample twice.
        trace = ClusterTrace([
            record("vm-0", arrival_s=0.0, lifetime_s=1000.0),
            record("vm-1", arrival_s=7200.0, lifetime_s=1000.0),
        ])
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace)
        times = result.sample_array("time_s")
        assert times.tolist() == [0.0, 3600.0, 7200.0]
        assert (np.diff(times) > 0).all()
        # The horizon sample reflects *post*-arrival state even when the grid
        # lands on it: vm-1 (arriving at 7200) is counted.
        assert result.sample_array("running_vms").tolist() == [0, 0, 1]

    def test_final_sample_added_when_horizon_off_grid(self):
        trace = ClusterTrace([
            record("vm-0", arrival_s=0.0, lifetime_s=1000.0),
            record("vm-1", arrival_s=5000.0, lifetime_s=1000.0),
        ])
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace)
        assert result.sample_array("time_s").tolist() == [0.0, 3600.0, 5000.0]

    def test_explicit_horizon_extends_sampling(self):
        trace = ClusterTrace([record("vm-0", arrival_s=0.0, lifetime_s=1000.0)])
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace, horizon_s=10000.0)
        times = result.sample_array("time_s")
        assert times.tolist() == [0.0, 3600.0, 7200.0, 10000.0]
        assert (np.diff(times) > 0).all()


class TestPoolDimensionerCaches:
    def make_trace(self, memory_gb):
        return ClusterTrace([
            record(f"vm-{i}", arrival_s=60.0 * i, lifetime_s=3600.0,
                   memory_gb=memory_gb)
            for i in range(20)
        ])

    def test_cache_entry_dies_with_trace(self):
        dimensioner = PoolDimensioner(n_servers=2, search_steps=2)
        trace = self.make_trace(4.0)
        dimensioner.baseline_required_dram_gb(trace)
        dimensioner.peak_baseline_required_dram_gb(trace)
        assert len(dimensioner._baseline_cache) == 1
        assert len(dimensioner._peak_baseline_cache) == 1
        del trace
        gc.collect()
        assert len(dimensioner._baseline_cache) == 0
        assert len(dimensioner._peak_baseline_cache) == 0

    def test_new_trace_never_inherits_stale_baseline(self):
        """Force CPython ``id()`` reuse: a fresh trace allocated at a dead
        trace's address must not pick up the dead trace's cached baseline."""
        dimensioner = PoolDimensioner(n_servers=2, search_steps=2)
        small = self.make_trace(4.0)
        stale_baseline = dimensioner.baseline_required_dram_gb(small)
        dead_id = id(small)
        del small
        gc.collect()
        big = None
        for _ in range(100):
            candidate = self.make_trace(64.0)
            if id(candidate) == dead_id:
                big = candidate
                break
            del candidate
        if big is None:  # pragma: no cover - allocator did not cooperate
            big = self.make_trace(64.0)
        fresh = PoolDimensioner(n_servers=2, search_steps=2)
        expected = fresh.baseline_required_dram_gb(big)
        assert dimensioner.baseline_required_dram_gb(big) == pytest.approx(expected)
        assert expected > stale_baseline

    def test_rejection_cache_weakly_keyed(self):
        dimensioner = PoolDimensioner(n_servers=2, search_steps=2)
        trace = self.make_trace(4.0)
        dimensioner._core_only_rejections(trace)
        assert len(dimensioner._rejection_cache) == 1
        del trace
        gc.collect()
        assert len(dimensioner._rejection_cache) == 0


class TestTraceCsvDefaults:
    REQUIRED = "vm_id,cluster_id,arrival_s,lifetime_s,cores,memory_gb"

    def test_missing_optional_columns_use_defaults(self, tmp_path):
        path = tmp_path / "minimal.csv"
        path.write_text(self.REQUIRED + "\nvm-0,c0,0.0,3600.0,4,16.0\n")
        trace = ClusterTrace.from_csv(path)
        assert len(trace) == 1
        loaded = trace[0]
        assert loaded.cores == 4
        assert loaded.customer_id == "anonymous"
        assert loaded.vm_family == "general"
        assert loaded.untouched_fraction == 0.5
        assert loaded.workload_name == ""

    def test_missing_required_column_raises(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("vm_id,cluster_id,arrival_s,lifetime_s,cores\n"
                        "vm-0,c0,0.0,3600.0,4\n")
        with pytest.raises(ValueError, match="memory_gb"):
            ClusterTrace.from_csv(path)

    def test_empty_required_cell_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text(self.REQUIRED + "\n,c0,0.0,3600.0,4,16.0\n")
        with pytest.raises(ValueError, match="vm_id"):
            ClusterTrace.from_csv(path)

    def test_bad_value_reports_line_and_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(self.REQUIRED + "\nvm-0,c0,zero,3600.0,4,16.0\n")
        with pytest.raises(ValueError, match="arrival_s"):
            ClusterTrace.from_csv(path)

    def test_round_trip_still_works(self, tmp_path):
        trace = bulk_trace(seed=11, n_servers=2, duration_days=0.1)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = ClusterTrace.from_csv(path)
        assert len(loaded) == len(trace)
        assert loaded[0] == trace[0]


class TestIndexedSchedulerEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_differential_randomized_trace(self, seed):
        trace = bulk_trace(seed=seed)
        results = {}
        for strategy in ("indexed", "linear"):
            sim = ClusterSimulator(n_servers=10, sample_interval_s=1800.0,
                                   scheduler_strategy=strategy)
            results[strategy] = sim.run(trace)
        indexed, linear = results["indexed"], results["linear"]
        assert indexed.placements == linear.placements
        assert indexed.rejected_vms == linear.rejected_vms
        assert indexed.server_peak_local_gb == linear.server_peak_local_gb
        assert (indexed.sample_buffer.rows() == linear.sample_buffer.rows()).all()

    def test_differential_with_pool_policy(self):
        trace = bulk_trace(seed=41, n_servers=8, utilization=0.9)
        results = {}
        for strategy in ("indexed", "linear"):
            sim = ClusterSimulator(n_servers=8, pool_size_sockets=8,
                                   pool_capacity_gb_per_group=600.0,
                                   constrain_memory=False,
                                   sample_interval_s=1800.0,
                                   scheduler_strategy=strategy)
            results[strategy] = sim.run(trace, policy=fixed_fraction_policy(0.4))
        indexed, linear = results["indexed"], results["linear"]
        assert indexed.placements == linear.placements
        assert indexed.pool_peak_gb == linear.pool_peak_gb
        assert (indexed.sample_buffer.rows() == linear.sample_buffer.rows()).all()

    def test_select_server_matches_after_manual_churn(self):
        servers = [ClusterServer(f"s{i}", ServerConfig()) for i in range(6)]
        indexed = VMScheduler(servers, strategy="indexed")
        shadow = [ClusterServer(f"s{i}", ServerConfig()) for i in range(6)]
        linear = VMScheduler(shadow, strategy="linear")
        rng = np.random.default_rng(5)
        live = []
        for step in range(300):
            if live and rng.uniform() < 0.35:
                vm_id, a, b = live.pop(int(rng.integers(len(live))))
                indexed.remove(vm_id, a)
                linear.remove(vm_id, b)
                continue
            cores = int(rng.choice([1, 2, 4, 8, 16]))
            mem = float(cores * rng.choice([2.0, 4.0, 8.0]))
            vm_id = f"vm-{step}"
            try:
                a = indexed.place(vm_id, cores, mem, 0.0)
            except Exception:
                a = None
            try:
                b = linear.place(vm_id, cores, mem, 0.0)
            except Exception:
                b = None
            if a is None or b is None:
                assert a is None and b is None
                continue
            assert a.server_id == b.server_id
            live.append((vm_id, a, b))
        assert indexed.used_cores == linear.used_cores
        assert indexed.running_vms == linear.running_vms

    def test_strategy_validation(self):
        servers = [ClusterServer("s0", ServerConfig())]
        with pytest.raises(ValueError):
            VMScheduler(servers, strategy="quantum")
        with pytest.raises(ValueError):
            ClusterSimulator(n_servers=1, scheduler_strategy="quantum")
        with pytest.raises(ValueError):
            PoolDimensioner(n_servers=1, scheduler_strategy="quantum")


class TestAccountingInvariants:
    def test_scheduler_aggregates_match_per_server_sums(self):
        trace = bulk_trace(seed=23, n_servers=6)
        sim = ClusterSimulator(n_servers=6, sample_interval_s=1800.0)
        result = sim.run(trace)
        # After the run every placed VM has departed, so the aggregates the
        # samples were computed from must have returned to zero.
        final = result.samples[-1]
        assert final.running_vms >= 0
        assert result.placed_vms + result.rejected_vms == len(trace)

    def test_used_local_matches_bruteforce_at_every_sample(self):
        """Per-sample used_local_gb equals the sum over VMs that arrived
        strictly before and depart strictly after the sample time (i.e. the
        per-sample deltas are exactly placements minus departures)."""
        trace = bulk_trace(seed=7, n_servers=8, utilization=0.7)
        sim = ClusterSimulator(n_servers=8, sample_interval_s=1800.0)
        result = sim.run(trace)
        placed = [r for r in trace if r.vm_id in result.placements]
        assert len(placed) == result.placed_vms
        arrivals = np.array([r.arrival_s for r in placed])
        departures = np.array([r.departure_s for r in placed])
        memory = np.array([r.memory_gb for r in placed])
        times = result.sample_array("time_s")
        used_local = result.sample_array("used_local_gb")
        running = result.sample_array("running_vms")
        horizon = times[-1]
        for t, used, n_running in zip(times, used_local, running):
            # Grid samples are taken before same-instant arrivals; the final
            # horizon sample is taken after every arrival has been placed.
            arrived = arrivals <= t if t == horizon else arrivals < t
            mask = arrived & (departures > t)
            assert used == pytest.approx(float(memory[mask].sum()), abs=1e-6)
            assert n_running == int(mask.sum())

    def test_pool_used_never_negative(self):
        trace = bulk_trace(seed=13, n_servers=6, utilization=0.8)
        sim = ClusterSimulator(n_servers=6, pool_size_sockets=4,
                               constrain_memory=False, sample_interval_s=900.0)
        # An irrational fraction maximises float drift in the += / -= cycle.
        result = sim.run(trace, policy=fixed_fraction_policy(1.0 / 3.0))
        used_pool = result.sample_array("used_pool_gb")
        assert (used_pool >= 0.0).all()
        assert used_pool.max() > 0.0

    def test_samples_compatibility_view(self):
        trace = bulk_trace(seed=19, n_servers=4, duration_days=0.3)
        sim = ClusterSimulator(n_servers=4, sample_interval_s=1800.0)
        result = sim.run(trace)
        assert result.n_samples == len(result.samples)
        first = result.samples[0]
        assert first.time_s == result.sample_array("time_s")[0]
        assert isinstance(first.running_vms, int)
        with pytest.raises(AttributeError):
            result.sample_array("not_a_column")

"""Streamed-vs-materialised equivalence tests for the trace-streaming layer.

DESIGN.md section 4 guarantees that replaying a trace through ``TraceStream``
chunks is *identical* to replaying the materialised trace -- same records,
same simulator samples, same savings -- for any chunk size.  These tests
enforce that contract, the CSV streaming path, the trace-metadata fixes, and
the fleet-level capacity search differential (DESIGN.md section 5).
"""

import numpy as np
import pytest

from repro.cluster.fleet import FleetSimulator, pond_policy_factory
from repro.cluster.pool import FixedFractionPolicy, PoolDimensioner
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.trace import (
    ClusterTrace,
    CsvTraceStream,
    MaterializedTraceStream,
    TraceColumns,
    TraceStream,
    VMTraceRecord,
    write_csv,
)
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator
from repro.core.policies import PondTracePolicy
from repro.core.prediction.combined import CombinedOperatingPoint

OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=1.5, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


def gen_config(**kwargs):
    defaults = dict(
        cluster_id="stream", n_servers=6, duration_days=1.4,
        mean_lifetime_hours=2.0, target_core_utilization=0.85, seed=29,
    )
    defaults.update(kwargs)
    return TraceGenConfig(**defaults)


@pytest.fixture(scope="module")
def config():
    return gen_config()


@pytest.fixture(scope="module")
def trace(config):
    return TraceGenerator(config).generate_bulk()


def chunk_sizes_for(trace):
    """Several chunk sizes, including chunk=1 and chunk > len(trace)."""
    return (1, 7, 256, len(trace) + 10)


class TestStreamedGenerationEquality:
    def test_streamed_equals_materialised_byte_for_byte(self, config, trace):
        for chunk_size in chunk_sizes_for(trace):
            stream = TraceGenerator(config).stream(chunk_size)
            records = [r for chunk in stream.chunks() for r in chunk.records]
            assert records == trace.records, chunk_size

    def test_stream_is_reiterable(self, config):
        stream = TraceGenerator(config).stream(64)
        first = [r for chunk in stream.chunks() for r in chunk.records]
        second = [r for chunk in stream.chunks() for r in chunk.records]
        assert first == second

    def test_chunk_sizes_are_respected(self, config, trace):
        stream = TraceGenerator(config).stream(50)
        lengths = [len(chunk) for chunk in stream.chunks()]
        assert sum(lengths) == len(trace)
        assert all(n == 50 for n in lengths[:-1])
        assert 1 <= lengths[-1] <= 50

    def test_chunks_carry_aligned_columns(self, config):
        for chunk in TraceGenerator(config).stream(33).chunks():
            assert chunk.records is not None
            assert len(chunk) == len(chunk.records)
            np.testing.assert_array_equal(
                chunk.memory_gb,
                np.array([r.memory_gb for r in chunk.records]),
            )
            assert chunk.vm_ids == tuple(r.vm_id for r in chunk.records)

    def test_materialize_roundtrip(self, config, trace):
        rebuilt = TraceGenerator(config).stream(128).materialize()
        assert rebuilt.records == trace.records
        assert rebuilt.cluster_id == trace.cluster_id

    def test_arrivals_sorted_across_chunk_boundaries(self, config):
        last = -1.0
        for chunk in TraceGenerator(config).stream(17).chunks():
            for record in chunk.records:
                assert record.arrival_s >= last
                last = record.arrival_s

    def test_chunk_size_validation(self, config, trace):
        with pytest.raises(ValueError):
            TraceGenerator(config).stream(0)
        with pytest.raises(ValueError):
            trace.stream(-1)


class TestStreamedReplayEquality:
    """The acceptance property: identical SimulationResult samples and savings."""

    def make_simulator(self, config, pool_size_sockets):
        return ClusterSimulator(
            n_servers=config.n_servers,
            pool_size_sockets=pool_size_sockets,
            constrain_memory=False,
        )

    def assert_results_identical(self, expected, got):
        assert got.placed_vms == expected.placed_vms
        assert got.rejected_vms == expected.rejected_vms
        assert got.placements == expected.placements
        assert got.server_peak_local_gb == expected.server_peak_local_gb
        assert got.pool_peak_gb == expected.pool_peak_gb
        assert got.total_pool_gb_allocated == expected.total_pool_gb_allocated
        assert got.total_memory_gb_allocated == expected.total_memory_gb_allocated
        np.testing.assert_array_equal(
            got.sample_buffer.rows(), expected.sample_buffer.rows()
        )
        # Savings inputs (uniform provisioning model) are therefore identical.
        assert got.uniform_required_local_dram_gb \
            == expected.uniform_required_local_dram_gb
        assert got.required_pool_dram_gb == expected.required_pool_dram_gb

    def test_batch_policy_replay_identical(self, config, trace):
        expected = self.make_simulator(config, 4).run(
            trace, policy=PondTracePolicy(OPERATING_POINT, seed=3)
        )
        for chunk_size in chunk_sizes_for(trace):
            stream = TraceGenerator(config).stream(chunk_size)
            got = self.make_simulator(config, 4).run(
                stream, policy=PondTracePolicy(OPERATING_POINT, seed=3)
            )
            self.assert_results_identical(expected, got)

    def test_no_pool_memory_constrained_replay_identical(self, config, trace):
        expected = ClusterSimulator(n_servers=config.n_servers).run(trace)
        for chunk_size in chunk_sizes_for(trace):
            got = ClusterSimulator(n_servers=config.n_servers).run(
                TraceGenerator(config).stream(chunk_size)
            )
            self.assert_results_identical(expected, got)

    def test_per_record_callback_replay_identical(self, config, trace):
        expected = self.make_simulator(config, 4).run(
            trace, policy=PondTracePolicy(OPERATING_POINT, seed=3).__call__
        )
        got = self.make_simulator(config, 4).run(
            trace.stream(37),
            policy=PondTracePolicy(OPERATING_POINT, seed=3).__call__,
        )
        self.assert_results_identical(expected, got)

    def test_precomputed_pool_gb_replay_identical(self, config, trace):
        allocations = PondTracePolicy(OPERATING_POINT, seed=3).decide_batch(trace)
        expected = self.make_simulator(config, 4).run(trace, pool_gb=allocations)
        got = self.make_simulator(config, 4).run(
            trace.stream(64), pool_gb=allocations
        )
        self.assert_results_identical(expected, got)

    def test_pool_gb_length_mismatch_detected_on_stream(self, config, trace):
        simulator = self.make_simulator(config, 4)
        with pytest.raises(ValueError, match="pool_gb"):
            simulator.run(trace.stream(64), pool_gb=np.zeros(len(trace) - 1))
        with pytest.raises(ValueError, match="pool_gb"):
            simulator.run(trace.stream(64), pool_gb=np.zeros(len(trace) + 1))

    def test_unsorted_stream_rejected(self, trace):
        class ShuffledStream(TraceStream):
            cluster_id = "shuffled"

            def __init__(self, records):
                self._records = records

            def chunks(self):
                yield TraceColumns.from_records(self._records)

        records = list(reversed(trace.records))
        simulator = ClusterSimulator(n_servers=4)
        with pytest.raises(ValueError, match="sorted by arrival"):
            simulator.run(ShuffledStream(records))

    def test_fleet_streamed_savings_identical(self, config):
        factory = pond_policy_factory(OPERATING_POINT, seed=3)
        materialised = FleetSimulator.sharded(
            2, config, pool_size_sockets=4
        ).run(factory)
        streamed = FleetSimulator.sharded(
            2, config, pool_size_sockets=4, stream_chunk_size=128
        ).run(factory)
        assert streamed.savings == materialised.savings
        assert streamed.n_vms == materialised.n_vms
        assert streamed.placed_vms == materialised.placed_vms


class TestBatchPoliciesOnChunks:
    def test_chunked_decide_batch_equals_whole_trace(self, trace):
        whole = PondTracePolicy(OPERATING_POINT, seed=5).decide_batch(trace)
        chunked_policy = PondTracePolicy(OPERATING_POINT, seed=5)
        pieces = [
            chunked_policy.decide_batch(chunk)
            for chunk in trace.stream(41).chunks()
        ]
        np.testing.assert_array_equal(np.concatenate(pieces), whole)
        assert chunked_policy.stats.n_vms == len(trace)

    def test_fixed_fraction_accepts_chunks(self, trace):
        policy = FixedFractionPolicy(0.25)
        chunk = next(iter(trace.stream(10)))
        np.testing.assert_allclose(
            policy.decide_batch(chunk), chunk.memory_gb * 0.25
        )


class TestCsvTraceStream:
    def test_csv_stream_matches_from_csv(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = ClusterTrace.from_csv(path)
        for chunk_size in (1, 100, len(trace) + 5):
            stream = CsvTraceStream(path, chunk_size=chunk_size)
            records = [r for chunk in stream.chunks() for r in chunk.records]
            assert records == loaded.records, chunk_size

    def test_csv_stream_is_reiterable_and_replayable(self, config, trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        stream = CsvTraceStream(path, chunk_size=97)
        expected = ClusterSimulator(n_servers=config.n_servers).run(trace)
        got = ClusterSimulator(n_servers=config.n_servers).run(stream)
        assert got.placements == expected.placements
        np.testing.assert_array_equal(
            got.sample_buffer.rows(), expected.sample_buffer.rows()
        )
        # second pass over the same stream object works (fresh file handle)
        again = ClusterSimulator(n_servers=config.n_servers).run(stream)
        assert again.placed_vms == got.placed_vms

    def test_unsorted_csv_raises_with_line_number(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        records = [
            VMTraceRecord(vm_id="a", cluster_id="c", arrival_s=100.0,
                          lifetime_s=60.0, cores=2, memory_gb=8.0),
            VMTraceRecord(vm_id="b", cluster_id="c", arrival_s=5.0,
                          lifetime_s=60.0, cores=2, memory_gb=8.0),
        ]
        # Bypass ClusterTrace (which would sort) to write an unsorted file.
        trace = ClusterTrace([])
        trace.records = records
        trace.to_csv(path)
        with pytest.raises(ValueError, match="line 3.*not sorted"):
            list(CsvTraceStream(path).chunks())

    def test_csv_stream_default_cluster_id_is_file_stem(self, trace, tmp_path):
        path = tmp_path / "cluster-west.csv"
        trace.to_csv(path)
        assert CsvTraceStream(path).cluster_id == "cluster-west"
        assert CsvTraceStream(path, cluster_id="x").cluster_id == "x"


class TestStreamingCsvWriter:
    """The streaming CSV *writer*: exporting without materialising."""

    def test_stream_export_matches_materialised_export(self, config, trace,
                                                       tmp_path):
        materialised_path = tmp_path / "materialised.csv"
        streamed_path = tmp_path / "streamed.csv"
        trace.to_csv(materialised_path)
        rows = TraceGenerator(config).stream(chunk_size=128).to_csv(streamed_path)
        assert rows == len(trace)
        assert streamed_path.read_bytes() == materialised_path.read_bytes()

    def test_chunk_size_does_not_change_output(self, trace, tmp_path):
        reference = tmp_path / "reference.csv"
        trace.to_csv(reference)
        for chunk_size in (1, 7, len(trace) + 5):
            path = tmp_path / f"chunk-{chunk_size}.csv"
            written = write_csv(trace, path, chunk_size=chunk_size)
            assert written == len(trace)
            assert path.read_bytes() == reference.read_bytes(), chunk_size

    def test_round_trip_through_both_readers(self, config, tmp_path):
        path = tmp_path / "roundtrip.csv"
        stream = TraceGenerator(config).stream(chunk_size=64)
        stream.to_csv(path)
        expected = stream.materialize()
        assert ClusterTrace.from_csv(path).records == expected.records
        assert CsvTraceStream(path, chunk_size=51).materialize().records \
            == expected.records

    def test_materialized_stream_export(self, trace, tmp_path):
        path = tmp_path / "view.csv"
        reference = tmp_path / "reference.csv"
        trace.to_csv(reference)
        MaterializedTraceStream(trace, chunk_size=33).to_csv(path)
        assert path.read_bytes() == reference.read_bytes()

    def test_chunks_without_records_rejected(self, tmp_path):
        class BareStream(TraceStream):
            def chunks(self):
                yield TraceColumns(
                    vm_ids=("a",),
                    memory_gb=np.array([1.0]),
                    untouched_fraction=np.array([0.5]),
                )

        with pytest.raises(ValueError, match="records"):
            BareStream().to_csv(tmp_path / "bare.csv")


class TestTraceMetadata:
    def record(self, vm_id, cluster_id, arrival_s=0.0):
        return VMTraceRecord(vm_id=vm_id, cluster_id=cluster_id,
                             arrival_s=arrival_s, lifetime_s=60.0,
                             cores=2, memory_gb=8.0)

    def test_merge_same_cluster_keeps_id(self):
        a = ClusterTrace([self.record("a", "c1")])
        b = ClusterTrace([self.record("b", "c1", 10.0)])
        assert a.merge(b).cluster_id == "c1"

    def test_merge_different_clusters_joins_ids(self):
        a = ClusterTrace([self.record("a", "c1")])
        b = ClusterTrace([self.record("b", "c2")])
        assert a.merge(b).cluster_id == "c1+c2"
        assert b.merge(a).cluster_id == "c2+c1"

    def test_merge_with_empty_preserves_nonempty_id(self):
        a = ClusterTrace([self.record("a", "c1")])
        empty = ClusterTrace([], cluster_id="ignored")
        assert a.merge(empty).cluster_id == "c1"
        assert empty.merge(a).cluster_id == "c1"

    def test_merge_id_does_not_depend_on_arrival_order(self):
        # Before the fix the merged id collapsed to the earliest-arriving
        # record's cluster, so swapping arrival times changed the metadata.
        a = ClusterTrace([self.record("a", "c1", 50.0)])
        b = ClusterTrace([self.record("b", "c2", 1.0)])
        assert a.merge(b).cluster_id == "c1+c2"

    def test_for_cluster_preserves_requested_id_when_empty(self):
        trace = ClusterTrace([self.record("a", "c1")])
        filtered = trace.for_cluster("missing")
        assert len(filtered) == 0
        assert filtered.cluster_id == "missing"

    def test_materialized_stream_preserves_cluster_id(self):
        trace = ClusterTrace([self.record("a", "c9")])
        assert MaterializedTraceStream(trace, 4).cluster_id == "c9"
        assert trace.stream().materialize().cluster_id == "c9"


class TestFleetCapacitySearch:
    @pytest.fixture(scope="class")
    def search_config(self):
        return gen_config(cluster_id="search", n_servers=8, duration_days=1.0,
                          seed=33)

    def test_single_shard_matches_pool_dimensioner(self, search_config):
        """Differential: the fleet search on one shard IS the dimensioner."""
        trace = TraceGenerator(search_config).generate_bulk()
        dimensioner = PoolDimensioner(
            n_servers=search_config.n_servers, search_steps=5
        )
        expected = dimensioner.evaluate_capacity_search(
            trace, 8, FixedFractionPolicy(0.3)
        )
        fleet = FleetSimulator([search_config], pool_size_sockets=8)
        got = fleet.capacity_search(
            lambda index: FixedFractionPolicy(0.3),
            traces=[trace], search_steps=5,
        )
        assert got.savings == expected

    def test_single_shard_streamed_matches_dimensioner(self, search_config):
        trace = TraceGenerator(search_config).generate_bulk()
        expected = PoolDimensioner(
            n_servers=search_config.n_servers, search_steps=5
        ).evaluate_capacity_search(trace, 8, FixedFractionPolicy(0.3))
        fleet = FleetSimulator(
            [search_config], pool_size_sockets=8, stream_chunk_size=200
        )
        got = fleet.capacity_search(
            lambda index: FixedFractionPolicy(0.3), search_steps=5
        )
        assert got.savings == expected

    def test_no_pool_degenerates_to_baseline(self, search_config):
        fleet = FleetSimulator([search_config], pool_size_sockets=0)
        result = fleet.capacity_search(search_steps=3)
        assert result.savings.pool_size_sockets == 0
        assert result.savings.required_total_dram_gb \
            == result.savings.baseline_dram_gb
        assert result.savings.required_pool_dram_gb == 0.0

    def test_multi_shard_search_properties(self, search_config):
        fleet = FleetSimulator.sharded(
            2, search_config, pool_size_sockets=8, stream_chunk_size=500
        )
        result = fleet.capacity_search(
            pond_policy_factory(OPERATING_POINT, seed=3), search_steps=4
        )
        total_servers = sum(cfg.n_servers for cfg in fleet.shard_configs)
        # One shared per-server DRAM size across the whole fleet.
        assert result.savings.required_local_dram_gb == pytest.approx(
            result.pooled_per_server_gb * total_servers
        )
        assert result.savings.baseline_dram_gb == pytest.approx(
            result.baseline_per_server_gb * total_servers
        )
        assert len(result.per_shard_pool_capacity_gb) == 2
        assert result.total_vms > 0
        assert result.rejection_budget >= 1
        assert result.policy_stats.n_vms > 0

    def test_heterogeneous_server_config_rejected(self, search_config):
        from dataclasses import replace

        from repro.cluster.server import ServerConfig

        other = replace(
            search_config, cluster_id="other",
            server_config=ServerConfig(name="fat", sockets=2,
                                       cores_per_socket=24,
                                       dram_per_socket_gb=384.0),
        )
        fleet = FleetSimulator([search_config, other], pool_size_sockets=8)
        with pytest.raises(ValueError, match="homogeneous"):
            fleet.capacity_search()

    def test_knob_validation(self, search_config):
        fleet = FleetSimulator([search_config], pool_size_sockets=8)
        with pytest.raises(ValueError):
            fleet.capacity_search(search_steps=0)
        with pytest.raises(ValueError):
            fleet.capacity_search(rejection_tolerance=-0.1)
        with pytest.raises(ValueError):
            fleet.capacity_search(pool_headroom=0.9)
        with pytest.raises(ValueError):
            fleet.capacity_search(traces=[])

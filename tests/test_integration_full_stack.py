"""Full-stack integration test: trained models driving the Pond control plane.

This test exercises the complete pipeline the paper describes in Figure 11:
offline training of both prediction models, VM scheduling through the Pond
scheduler (with the Pool Manager onlining slices on real Host objects), guest
memory behaviour on the resulting zNUMA topologies, QoS monitoring, and
mitigation of mispredicted VMs.
"""

import numpy as np
import pytest

from repro.core.config import PondConfig
from repro.core.control_plane.mitigation import MitigationManager
from repro.core.control_plane.pool_manager import PoolManager
from repro.core.control_plane.qos_monitor import QoSMonitor, QoSVerdict
from repro.core.control_plane.scheduler import PondScheduler
from repro.core.prediction.latency_model import LatencyInsensitivityModel
from repro.core.prediction.untouched_model import UntouchedMemoryPredictor
from repro.cxl.emc import EMCDevice
from repro.experiments.fig18_19_untouched import build_untouched_dataset
from repro.hypervisor.host import Host
from repro.hypervisor.vm import VMRequest
from repro.workloads.catalog import build_catalog
from repro.workloads.generator import PMUFeatureGenerator
from repro.workloads.memory_behavior import UntouchedMemoryModel
from repro.workloads.sensitivity import SCENARIO_182, slowdown_under_spill


@pytest.fixture(scope="module")
def trained_models():
    catalog = build_catalog(seed=7)
    generator = PMUFeatureGenerator(seed=3)
    training = generator.training_set(catalog, SCENARIO_182, samples_per_workload=2)
    latency_model = LatencyInsensitivityModel(pdm_percent=5.0, n_estimators=25,
                                              random_state=3)
    latency_model.fit(training.features, training.slowdowns)
    latency_model.calibrate_threshold(training.features, training.slowdowns,
                                      fp_target_percent=2.0)

    dataset = build_untouched_dataset(n_vms=500, seed=3)
    untouched_model = UntouchedMemoryPredictor(quantile=0.05, n_estimators=30,
                                               random_state=3)
    untouched_model.fit(dataset.metadata_rows, dataset.untouched_fractions)
    return catalog, generator, latency_model, untouched_model


def test_end_to_end_scheduling_monitoring_and_mitigation(trained_models):
    catalog, generator, latency_model, untouched_model = trained_models
    config = PondConfig(pdm_percent=5.0, pool_buffer_slices_per_host=4)
    behaviour = UntouchedMemoryModel(n_customers=30, seed=5)
    rng = np.random.default_rng(5)

    emc = EMCDevice("emc-int", capacity_gb=2048, n_ports=8)
    pool_manager = PoolManager(emc)
    hosts = [Host(f"host-{i}", total_cores=48, local_memory_gb=384.0,
                  pool_latency_ns=180.0) for i in range(4)]
    for host in hosts:
        pool_manager.register_host(host)

    workload_of_vm = {}

    def insensitivity_predictor(request: VMRequest):
        workload = workload_of_vm[request.vm_id]
        features = generator.feature_vector(workload, rng).reshape(1, -1)
        return bool(latency_model.predict_insensitive(features)[0])

    def untouched_predictor(request: VMRequest) -> float:
        customer = request.customer_id
        history = behaviour.customer_history_percentiles(customer, rng=rng)
        row = {
            "memory_gb": request.memory_gb,
            "cores": request.cores,
            "vm_family": request.vm_type,
            "guest_os": request.guest_os,
            "region": request.region,
            "history_percentiles": history.tolist(),
        }
        return untouched_model.predict_znuma_gb(row, request.memory_gb,
                                                slice_gb=config.slice_gb)

    scheduler = PondScheduler(config, pool_manager, insensitivity_predictor,
                              untouched_predictor)

    # Schedule a population of VMs round-robin across hosts.
    workloads = list(catalog)
    placed = []
    for i in range(40):
        workload = workloads[i % len(workloads)]
        customer = behaviour.customer_ids[i % len(behaviour.customer_ids)]
        request = VMRequest.create(
            cores=4, memory_gb=32.0, customer_id=customer,
            vm_type="general", workload_name=workload.name,
        )
        workload_of_vm[request.vm_id] = workload
        host = hosts[i % len(hosts)]
        vm = scheduler.schedule(request, host, start_time_s=float(i))
        placed.append((host, vm, workload))

    assert len(placed) == 40
    total_pool = sum(vm.pool_memory_gb for _, vm, _ in placed)
    assert total_pool > 0.0  # the models put some memory on the pool

    # Simulate guest behaviour: each VM touches its actual working set.
    for host, vm, workload in placed:
        untouched = behaviour.sample_untouched_fraction(vm.request.customer_id,
                                                        rng=rng)
        vm.record_touch(vm.total_memory_gb * (1.0 - untouched))

    # QoS monitoring with a slowdown estimator derived from the workload model.
    def slowdown_estimator(vm):
        workload = workload_of_vm[vm.vm_id]
        if vm.total_memory_gb <= 0 or vm.touched_memory_gb <= 0:
            return 0.0
        spill_fraction = min(1.0, vm.spilled_gb / max(vm.touched_memory_gb, 1e-9))
        return slowdown_under_spill(workload, SCENARIO_182, spill_fraction)

    monitor = QoSMonitor(config, slowdown_estimator)
    mitigation = MitigationManager()
    mitigated = 0
    for host, vm, _ in placed:
        decision = monitor.check_vm(vm)
        if decision.verdict is QoSVerdict.MITIGATE:
            record = mitigation.mitigate(host, vm.vm_id)
            assert record.method in ("local_copy", "live_migration")
            mitigated += 1

    # Mitigated VMs are now entirely local.
    for host, vm, _ in placed:
        if vm.mitigated:
            assert vm.pool_memory_gb == 0.0

    # The whole pipeline keeps mitigations a small minority of VMs.
    assert mitigated <= 10

    # VM departures release pool memory back to the pool asynchronously.
    for host, vm, _ in placed[:10]:
        if vm.vm_id in host.vms:
            scheduler.handle_departure(host, vm.vm_id, time_s=1000.0)
    pool_manager.process_releases()
    assert pool_manager.unassigned_pool_gb >= 0


def test_znuma_topologies_expose_pool_latency(trained_models):
    _, _, _, untouched_model = trained_models
    config = PondConfig()
    emc = EMCDevice("emc-topo", capacity_gb=256, n_ports=4)
    pool_manager = PoolManager(emc)
    host = Host("host-z", total_cores=48, local_memory_gb=384.0, pool_latency_ns=180.0)
    pool_manager.register_host(host)
    scheduler = PondScheduler(
        config, pool_manager,
        insensitivity_predictor=lambda request: None,
        untouched_predictor=lambda request: 12.0,
    )
    request = VMRequest.create(cores=8, memory_gb=64.0)
    vm = scheduler.schedule(request, host)
    topology = host.vm_topology(vm.vm_id)
    assert topology.has_znuma
    assert topology.znuma_memory_gb == pytest.approx(12.0)
    slit = topology.slit_matrix()
    assert slit[0, 1] > slit[0, 0]

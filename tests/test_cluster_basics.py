"""Unit tests for cluster servers, VM types, traces, and the trace generator."""

import numpy as np
import pytest

from repro.cluster.server import ClusterServer, ServerConfig
from repro.cluster.trace import ClusterTrace, VMTraceRecord
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator, generate_fleet
from repro.cluster.vm_types import (
    DEFAULT_FAMILY_WEIGHTS,
    VM_TYPE_CATALOG,
    get_vm_type,
    sample_vm_type,
    vm_mix_dram_per_core,
)


class TestServerConfig:
    def test_defaults_are_two_socket(self):
        config = ServerConfig()
        assert config.sockets == 2
        assert config.total_cores == 48
        assert config.total_dram_gb == pytest.approx(384.0)
        assert config.dram_per_core_gb == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(sockets=0)
        with pytest.raises(ValueError):
            ServerConfig(cores_per_socket=0)
        with pytest.raises(ValueError):
            ServerConfig(dram_per_socket_gb=0)


class TestClusterServer:
    def make(self):
        return ClusterServer("s1", ServerConfig())

    def test_placement_updates_counters(self):
        server = self.make()
        node = server.place("vm1", cores=8, local_gb=32.0, pool_gb=4.0)
        assert node in (0, 1)
        assert server.used_cores == 8
        assert server.used_local_gb == pytest.approx(32.0)
        assert server.pool_used_gb == pytest.approx(4.0)
        assert server.n_vms == 1

    def test_numa_fit_respected(self):
        server = self.make()
        # One socket has 24 cores; a 25-core VM cannot fit in any single node.
        assert server.find_numa_node(25, 10.0) is None
        assert server.find_numa_node(24, 10.0) is not None

    def test_remove_restores_capacity(self):
        server = self.make()
        server.place("vm1", 8, 32.0, 0.0)
        server.remove("vm1")
        assert server.used_cores == 0
        assert server.used_local_gb == 0.0
        with pytest.raises(KeyError):
            server.remove("vm1")

    def test_duplicate_placement_rejected(self):
        server = self.make()
        server.place("vm1", 2, 8.0, 0.0)
        with pytest.raises(ValueError):
            server.place("vm1", 2, 8.0, 0.0)

    def test_stranding_requires_full_cores(self):
        server = self.make()
        server.place("vm1", 24, 64.0, 0.0)
        assert server.stranded_gb == 0.0
        server.place("vm2", 24, 64.0, 0.0)
        assert server.free_cores == 0
        assert server.stranded_gb == pytest.approx(384.0 - 128.0)

    def test_peak_tracking(self):
        server = self.make()
        server.place("vm1", 4, 100.0, 0.0)
        server.place("vm2", 4, 50.0, 0.0)
        server.remove("vm1")
        assert server.peak_local_gb == pytest.approx(150.0)
        assert server.used_local_gb == pytest.approx(50.0)

    def test_best_fit_node_choice(self):
        server = self.make()
        server.place("vm1", 20, 10.0, 0.0)  # fills node to 20/24
        node = server.place("vm2", 4, 10.0, 0.0)
        # Best fit puts the 4-core VM on the fuller node.
        assert server.node_used_cores[node] == 24


class TestVMTypes:
    def test_catalog_memory_ratios(self):
        d8 = get_vm_type("D8")
        e8 = get_vm_type("E8")
        f8 = get_vm_type("F8")
        assert d8.memory_per_core_gb == pytest.approx(4.0)
        assert e8.memory_per_core_gb == pytest.approx(8.0)
        assert f8.memory_per_core_gb == pytest.approx(2.0)

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            get_vm_type("Z99")

    def test_sampling_respects_family_weights(self):
        rng = np.random.default_rng(0)
        only_general = {f: 0.0 for f in DEFAULT_FAMILY_WEIGHTS}
        only_general["general"] = 1.0
        for _ in range(50):
            assert sample_vm_type(rng, only_general).family == "general"

    def test_sampling_rejects_all_zero_weights(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_vm_type(rng, {f: 0.0 for f in DEFAULT_FAMILY_WEIGHTS})

    def test_mix_ratio_below_server_ratio(self):
        rng = np.random.default_rng(1)
        ratio = vm_mix_dram_per_core(rng, n_samples=2000)
        assert ratio < ServerConfig().dram_per_core_gb
        assert ratio > 2.0

    def test_small_vms_are_most_common(self):
        rng = np.random.default_rng(2)
        cores = [sample_vm_type(rng).cores for _ in range(1000)]
        assert np.median(cores) <= 4


class TestTraceRecords:
    def make_record(self, **kw):
        defaults = dict(vm_id="v1", cluster_id="c1", arrival_s=10.0, lifetime_s=100.0,
                        cores=4, memory_gb=16.0, untouched_fraction=0.5)
        defaults.update(kw)
        return VMTraceRecord(**defaults)

    def test_derived_fields(self):
        record = self.make_record()
        assert record.departure_s == pytest.approx(110.0)
        assert record.untouched_gb == pytest.approx(8.0)
        assert record.touched_gb == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make_record(lifetime_s=0.0)
        with pytest.raises(ValueError):
            self.make_record(cores=0)
        with pytest.raises(ValueError):
            self.make_record(untouched_fraction=1.5)

    def test_trace_ordering_and_span(self):
        records = [self.make_record(vm_id=f"v{i}", arrival_s=100.0 - i) for i in range(5)]
        trace = ClusterTrace(records)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert trace.arrival_span_s == pytest.approx(100.0)
        assert trace.duration_s == pytest.approx(200.0)

    def test_trace_csv_roundtrip(self, tmp_path):
        records = [self.make_record(vm_id=f"v{i}", arrival_s=float(i)) for i in range(10)]
        trace = ClusterTrace(records)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = ClusterTrace.from_csv(path)
        assert len(loaded) == len(trace)
        assert loaded[0].vm_id == trace[0].vm_id
        assert loaded[3].memory_gb == pytest.approx(trace[3].memory_gb)

    def test_for_cluster_filter_and_merge(self):
        a = ClusterTrace([self.make_record(vm_id="a", cluster_id="c1")])
        b = ClusterTrace([self.make_record(vm_id="b", cluster_id="c2")])
        merged = a.merge(b)
        assert len(merged) == 2
        assert merged.clusters() == ["c1", "c2"]
        assert len(merged.for_cluster("c2")) == 1


class TestTraceGenerator:
    def test_generates_nonempty_trace_with_warm_start(self):
        cfg = TraceGenConfig(n_servers=4, duration_days=0.5, seed=0)
        trace = TraceGenerator(cfg).generate()
        assert len(trace) > 20
        assert any(r.arrival_s == 0.0 for r in trace)  # warm-start population

    def test_no_warm_start_option(self):
        cfg = TraceGenConfig(n_servers=4, duration_days=0.5, warm_start=False, seed=0)
        trace = TraceGenerator(cfg).generate()
        assert all(r.arrival_s > 0.0 for r in trace)

    def test_higher_target_utilization_generates_more_arrivals(self):
        low = TraceGenerator(TraceGenConfig(n_servers=4, duration_days=0.5,
                                            target_core_utilization=0.4, seed=1)).generate()
        high = TraceGenerator(TraceGenConfig(n_servers=4, duration_days=0.5,
                                             target_core_utilization=0.9, seed=1)).generate()
        assert len(high) > len(low)

    def test_deterministic_given_seed(self):
        cfg = TraceGenConfig(n_servers=2, duration_days=0.3, seed=5)
        a = TraceGenerator(cfg).generate()
        b = TraceGenerator(cfg).generate()
        assert len(a) == len(b)
        assert [r.vm_id for r in a][:10] == [r.vm_id for r in b][:10]

    def test_workload_shift_increases_memory_share(self):
        cfg = TraceGenConfig(n_servers=4, duration_days=2.0, shift_day=1.0,
                             shift_memory_factor=5.0, warm_start=False, seed=2)
        trace = TraceGenerator(cfg).generate()
        before = [r for r in trace if r.arrival_s < 86_400]
        after = [r for r in trace if r.arrival_s >= 86_400]
        share_before = np.mean([r.vm_family == "memory_optimized" for r in before])
        share_after = np.mean([r.vm_family == "memory_optimized" for r in after])
        assert share_after > share_before

    def test_fleet_generation_varies_utilization(self):
        traces = generate_fleet(3, TraceGenConfig(n_servers=2, duration_days=0.3), seed=7)
        assert len(traces) == 3
        assert len({t.cluster_id for t in traces}) == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceGenConfig(n_servers=0)
        with pytest.raises(ValueError):
            TraceGenConfig(target_core_utilization=1.5)
        with pytest.raises(ValueError):
            generate_fleet(0)

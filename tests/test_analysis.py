"""The repro.analysis suite: determinism lint, pickle safety, contracts, sanitizer.

Lock-down for the project-specific static analysis (DESIGN.md section 12):

* **Rule fixtures**: one snippet per DET rule, including *verbatim*
  regression fixtures re-introducing PR 1's ``id()``-keyed dimensioner
  cache and PR 2's ``hash()``-based policy RNG -- the two shipped
  determinism bugs this lint exists to catch.
* **Suppressions and baseline**: reasoned ``# repro: noqa`` comments
  silence findings, malformed/unused ones are themselves findings, and
  the committed baseline keeps CI failing only on *new* findings.
* **Pickle safety**: hazardous attributes on pool-boundary classes are
  flagged through the static closure; ``__getstate__`` classes are
  trusted; the real source tree is clean.
* **Contracts**: the real replay loops satisfy the documented event
  ordering, and a fixture copy with fault/sample ordering swapped fails.
* **Sanitizer**: deliberately corrupted engine/ledger state trips the
  ``REPRO_SANITIZE`` invariants; clean replay sequences do not.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.contracts import check_pump, check_simulator
from repro.analysis.det_rules import lint_source
from repro.analysis.findings import (
    Finding,
    diff_against_baseline,
    load_baseline,
    parse_suppressions,
    write_baseline,
)
from repro.analysis.perf_floors import check_reports
from repro.analysis.pickle_safety import check_pickle_safety
from repro.analysis import sanitizer
from repro.cluster.engine import ArrayPlacementEngine
from repro.cluster.pool_topology import PoolGroupLedger
from repro.cluster.server import ServerConfig

SRC = Path(__file__).resolve().parents[1] / "src"


def rules_of(findings):
    return [f.rule for f in findings]


def lint(snippet, suppress=True):
    return lint_source(textwrap.dedent(snippet), "fixture.py",
                       suppress=suppress)


class TestDetRules:
    def test_det001_hash_call(self):
        findings = lint("key = hash((vm_id, seed)) % 1024\n")
        assert rules_of(findings) == ["DET001"]

    def test_det002_direct_id_key(self):
        findings = lint("cache[id(trace)] = value\n")
        assert rules_of(findings) == ["DET002"]

    def test_det002_tainted_name(self):
        findings = lint("""\
            def f(self, trace):
                key = id(trace)
                if key not in self._cache:
                    self._cache[key] = compute(trace)
                return self._cache[key]
            """)
        assert rules_of(findings).count("DET002") >= 2

    def test_det003_unseeded(self):
        assert rules_of(lint(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )) == ["DET003"]
        assert rules_of(lint(
            "rng = np.random.default_rng(None)\n")) == ["DET003"]

    def test_det003_optional_param_flagged(self):
        findings = lint("""\
            def f(seed=None):
                return np.random.default_rng(seed)
            """)
        assert rules_of(findings) == ["DET003"]

    def test_det003_narrowed_by_early_return(self):
        findings = lint("""\
            def f(seed=None):
                if seed is None:
                    return None
                return np.random.default_rng(seed)
            """)
        assert findings == []

    def test_det003_narrowed_by_guard(self):
        findings = lint("""\
            def f(seed=None):
                if seed is not None:
                    return np.random.default_rng(seed)
                return None
            """)
        assert findings == []

    def test_det004_conditional_fallback(self):
        findings = lint("""\
            def f(seed=None):
                rng = np.random.default_rng(seed) if seed is not None else None
                return rng
            """)
        assert rules_of(findings) == ["DET004"]

    def test_det005_set_iteration(self):
        findings = lint("""\
            def f(items):
                out = []
                for item in set(items):
                    out.append(item)
                return out
            """)
        assert rules_of(findings) == ["DET005"]
        assert rules_of(lint("order = list({1, 2, 3})\n")) == ["DET005"]

    def test_det005_sorted_exempt(self):
        assert lint("order = sorted(set(items))\n") == []
        assert lint("total = sum(set(items))\n") == []

    def test_det006_wall_clock(self):
        findings = lint("import time\nstamp = time.time()\n")
        assert rules_of(findings) == ["DET006"]
        assert lint("import time\nt0 = time.perf_counter()\n") == []

    def test_det007_dict_view(self):
        findings = lint("""\
            def f(mapping):
                out = []
                for key, value in mapping.items():
                    out.append(value)
                return out
            """)
        assert rules_of(findings) == ["DET007"]


class TestRegressionFixtures:
    """The two shipped determinism bugs, re-introduced verbatim."""

    PR1_ID_CACHE = """\
        class UniformPoolDimensioner:
            def _core_only_rejections(self, trace):
                key = id(trace)
                if key not in self._rejection_cache:
                    result = self._simulate(trace, None, 0, float("inf"), None)
                    self._rejection_cache[key] = result.rejected_vms
                return self._rejection_cache[key]

            def peak_baseline_required_dram_gb(self, trace):
                key = ("peak", id(trace))
                if key not in self._baseline_cache:
                    result = self._simulate(trace, None, 0, 0.0, None)
                    self._baseline_cache[key] = result.uniform_required_local_dram_gb
                return self._baseline_cache[key]
        """

    PR2_HASH_RNG = """\
        class StaticFractionPolicy:
            def _vm_rng(self, record):
                digest = abs(hash((record.vm_id, self.seed))) % (2**32)
                return np.random.default_rng(digest)
        """

    def test_pr1_id_keyed_cache_detected(self):
        findings = lint(self.PR1_ID_CACHE)
        det002 = [f for f in findings if f.rule == "DET002"]
        assert det002, "PR 1's id()-keyed cache must be flagged"
        # Both the tainted `key = id(trace)` uses and the tuple key.
        assert len(det002) >= 3

    def test_pr2_hash_rng_detected(self):
        findings = lint(self.PR2_HASH_RNG)
        assert "DET001" in rules_of(findings), \
            "PR 2's hash()-derived RNG digest must be flagged"


class TestSuppressions:
    def test_valid_suppression_silences(self):
        findings = lint(
            "cache[id(node)] = 1  "
            "# repro: noqa DET002 -- node pinned alive by the tree\n"
        )
        assert findings == []

    def test_missing_reason_is_noq001(self):
        findings = lint("cache[id(node)] = 1  # repro: noqa DET002\n")
        assert set(rules_of(findings)) == {"DET002", "NOQ001"}

    def test_unused_suppression_is_noq002(self):
        findings = lint("x = 1  # repro: noqa DET001 -- stale excuse\n")
        assert rules_of(findings) == ["NOQ002"]

    def test_docstring_mention_is_not_a_suppression(self):
        source = '"""Docs: use ``# repro: noqa DET001 -- reason``."""\n'
        assert parse_suppressions(source) == {}
        assert lint(source) == []

    def test_wrong_code_does_not_silence(self):
        findings = lint(
            "cache[id(node)] = 1  # repro: noqa DET001 -- wrong code\n")
        assert "DET002" in rules_of(findings)


class TestBaseline:
    def test_roundtrip_and_diff(self, tmp_path):
        findings = lint("key = hash(name)\n", suppress=False)
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        baseline = load_baseline(path)
        assert diff_against_baseline(findings, baseline) == []
        extra = findings + [Finding("DET001", "fixture.py", 9,
                                    "new", snippet="other = hash(x)")]
        new = diff_against_baseline(extra, baseline)
        assert [f.snippet for f in new] == ["other = hash(x)"]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_committed_baseline_matches_tree(self):
        """`repro.analysis lint src` must exit clean against the repo root
        baseline -- the acceptance gate the CI lint job enforces."""
        from repro.analysis.det_rules import lint_paths

        repo = SRC.parent
        findings = lint_paths([SRC])
        baseline = load_baseline(repo / "repro_analysis_baseline.json")
        new = diff_against_baseline(findings, baseline)
        assert new == [], "\n".join(f.format() for f in new)


class TestPickleSafety:
    def _tree(self, tmp_path, root_body, child_body=""):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text('"""fixture package."""\n')
        (pkg / "root.py").write_text(textwrap.dedent(root_body))
        if child_body:
            (pkg / "child.py").write_text(textwrap.dedent(child_body))
        return tmp_path

    def test_lock_and_rng_hazards_through_closure(self, tmp_path):
        root = self._tree(
            tmp_path,
            """\
            import threading
            from pkg.child import Child

            class Root:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.child = Child()
            """,
            """\
            import numpy as np

            class Child:
                def __init__(self, seed=0):
                    self._rng = np.random.default_rng(seed)

            class Scrubbed:
                def __init__(self):
                    self._rng = np.random.default_rng(0)

                def __getstate__(self):
                    return {}
            """,
        )
        findings = check_pickle_safety(root, roots=("pkg.root.Root",))
        rules = rules_of(findings)
        assert "PCK002" in rules  # the lock on Root
        assert "PCK004" in rules  # Child._rng, reached via the closure
        assert not any("Scrubbed" in f.message for f in findings)

    def test_getstate_trusted(self, tmp_path):
        root = self._tree(tmp_path, """\
            import numpy as np

            class Root:
                def __init__(self):
                    self._rng = np.random.default_rng(7)

                def __getstate__(self):
                    return {k: v for k, v in self.__dict__.items()
                            if k != "_rng"}
            """)
        assert check_pickle_safety(root, roots=("pkg.root.Root",)) == []

    def test_weakref_and_stored_generator(self, tmp_path):
        root = self._tree(tmp_path, """\
            import weakref

            class Root:
                def __init__(self, obj):
                    self.ref = weakref.ref(obj)
                    self.gen = (x for x in range(3))
                    self.items = tuple(x for x in range(3))
            """)
        findings = check_pickle_safety(root, roots=("pkg.root.Root",))
        assert sorted(rules_of(findings)) == ["PCK001", "PCK003"]

    def test_unknown_root_is_pck005(self, tmp_path):
        root = self._tree(tmp_path, "class Root:\n    pass\n")
        findings = check_pickle_safety(root, roots=("pkg.root.Missing",))
        assert rules_of(findings) == ["PCK005"]

    def test_real_pool_boundary_closure_is_clean(self):
        assert check_pickle_safety(SRC) == []


class TestContracts:
    SIMULATOR = SRC / "repro" / "cluster" / "simulator.py"
    POOL_TOPOLOGY = SRC / "repro" / "cluster" / "pool_topology.py"

    def test_real_loops_pass(self):
        assert check_simulator(self.SIMULATOR) == []
        assert check_pump(self.POOL_TOPOLOGY) == []

    def test_swapped_fault_sample_ordering_fails(self, tmp_path):
        """A fixture copy of simulator.py with the fault/sample tie
        inverted must fail the checker (acceptance criterion)."""
        source = self.SIMULATOR.read_text()
        swapped = source.replace(
            "elif fault_time <= next_sample_time:",
            "elif next_sample_time <= fault_time:",
        )
        assert swapped != source, "anchor line changed; update this test"
        fixture = tmp_path / "simulator_swapped.py"
        fixture.write_text(swapped)
        findings = check_simulator(fixture)
        assert "ORD003" in rules_of(findings)

    def test_sample_arm_order_swap_fails(self, tmp_path):
        fixture = tmp_path / "loop.py"
        fixture.write_text(textwrap.dedent("""\
            def _run_array_online(self):
                def advance_to(time_s):
                    while True:
                        if departure_time <= next_sample_time and \\
                                departure_time <= fault_time:
                            process_one_departure()
                        elif fault_time <= next_sample_time:
                            injector.fire_next()
                        else:
                            if mitigate:
                                qos_tick()
                            take_sample(next_sample_time)
                            if injector is not None:
                                injector.retry_tick(0)
            """))
        assert "ORD004" in rules_of(check_simulator(fixture))

    def test_missing_anchor_fails_loudly(self, tmp_path):
        fixture = tmp_path / "empty.py"
        fixture.write_text("x = 1\n")
        assert rules_of(check_simulator(fixture)) == ["ORD001"]
        assert "ORD001" in rules_of(check_pump(fixture))

    PUMP_TEMPLATE = """\
        _KIND_DEPARTURE = {dep}
        _KIND_FAULT = {fault}
        _KIND_SAMPLE = {sample}
        _KIND_HORIZON = 3
        _KIND_ARRIVAL = 4

        def _replay_crossshard_events():
            def pump(limit):
                while events and events[0] < limit:
                    event = heappop(events)
                    kind = event[1]
                    if kind == _KIND_DEPARTURE:
                        injector.on_departure(event[4])
                    elif kind == _KIND_FAULT:
                        injector.fire_next()
                    elif kind == _KIND_SAMPLE:
                        take_sample(shard, event[0])
                        heappush(events, (event[0] + s, _KIND_SAMPLE, shard))
                        if mitigate:
                            qos_tick(shard)
                        if injector is not None:
                            injector.retry_tick(shard)
                    else:
                        done[shard] = True
        """

    def test_minimal_pump_fixture_passes(self, tmp_path):
        fixture = tmp_path / "pump.py"
        fixture.write_text(textwrap.dedent(
            self.PUMP_TEMPLATE.format(dep=0, fault=1, sample=2)))
        assert check_pump(fixture) == []

    def test_kind_priority_swap_fails(self, tmp_path):
        fixture = tmp_path / "pump.py"
        fixture.write_text(textwrap.dedent(
            self.PUMP_TEMPLATE.format(dep=0, fault=2, sample=1)))
        assert "ORD005" in rules_of(check_pump(fixture))


@pytest.fixture
def sanitized():
    sanitizer.install()
    try:
        yield
    finally:
        sanitizer.uninstall()


def make_engine(pool_capacity=100.0):
    config = ServerConfig(name="san", sockets=2, cores_per_socket=8,
                          dram_per_socket_gb=32.0)
    return ArrayPlacementEngine(
        2, config, group_of=[0, 0], pool_free_gb={0: pool_capacity},
    )


class TestSanitizer:
    def test_clean_sequence_passes(self, sanitized):
        engine = make_engine()
        handle = engine.place(2, 8.0, 4.0)
        assert handle >= 0
        assert engine.migrate_pool_to_local(handle) >= 0.0
        engine.remove(handle)

    def test_double_remove_trips(self, sanitized):
        engine = make_engine()
        handle = engine.place(2, 8.0, 4.0)
        engine.remove(handle)
        with pytest.raises(sanitizer.SanitizerError, match="already free"):
            engine.remove(handle)

    def test_corrupted_pool_used_trips(self, sanitized):
        engine = make_engine()
        engine.pool_used_gb[0] = -5.0
        with pytest.raises(sanitizer.SanitizerError, match="negative"):
            engine.place(2, 8.0, 4.0)

    def test_conservation_drift_trips(self, sanitized):
        ledger = PoolGroupLedger({0: 100.0})
        config = ServerConfig(name="san", sockets=2, cores_per_socket=8,
                              dram_per_socket_gb=32.0)
        engine = ArrayPlacementEngine(
            2, config, group_of=[0, 0],
            pool_free_gb=ledger.free_gb, pool_used_gb=ledger.used_gb,
            pool_peak_gb=ledger.peak_gb,
        )
        # A corrupted ledger: free credited without a matching used debit.
        ledger.free_gb[0] += 7.0
        with pytest.raises(sanitizer.SanitizerError, match="drifted"):
            engine.place(2, 8.0, 4.0)

    def test_corrupted_ledger_trips_on_degrade(self, sanitized):
        ledger = PoolGroupLedger({0: 100.0})
        ledger.used_gb[0] = -3.0
        with pytest.raises(sanitizer.SanitizerError, match="negative"):
            ledger.degrade(0, 0.5)

    def test_degraded_group_transient_is_tolerated(self, sanitized):
        """The documented fault protocol: unmediated frees on a degraded
        group are legal until the injector's resync re-clamps."""
        ledger = PoolGroupLedger({0: 100.0})
        config = ServerConfig(name="san", sockets=2, cores_per_socket=8,
                              dram_per_socket_gb=32.0)
        engine = ArrayPlacementEngine(
            2, config, group_of=[0, 0],
            pool_free_gb=ledger.free_gb, pool_used_gb=ledger.used_gb,
            pool_peak_gb=ledger.peak_gb,
        )
        handle = engine.place(2, 8.0, 10.0)
        ledger.degrade(0, 1.0)  # total group loss: capacity pinned to 0
        engine.remove(handle)  # unmediated free += on the dead group
        ledger.resync(0)

    def test_uninstall_restores(self):
        sanitizer.install()
        sanitizer.uninstall()
        assert not sanitizer.is_installed()
        engine = make_engine()
        handle = engine.place(2, 8.0, 0.0)
        engine.remove(handle)
        # Unwrapped path: whatever the raw engine does on a double remove,
        # it is no longer the sanitizer's structured diagnosis.
        with pytest.raises(Exception) as excinfo:
            engine.remove(handle)
        assert not isinstance(excinfo.value, sanitizer.SanitizerError)


class TestPerfFloors:
    def _report(self, tmp_path, name="demo", **extra):
        payload = {
            "benchmark": name, "smoke": True, "unix_time": 0.0,
            "python": "3", "platform": "test", "cpu_count": 1, **extra,
        }
        path = tmp_path / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload))
        return path

    def test_ok_and_floor_violation(self, tmp_path):
        self._report(tmp_path, speedup=2.0, speedup_floor=1.5)
        assert check_reports([tmp_path], emit=lambda _line: None) == 0
        self._report(tmp_path, name="slow", speedup=1.0, speedup_floor=1.5)
        assert check_reports([tmp_path], emit=lambda _line: None) == 1

    def test_required_report_missing_fails(self, tmp_path):
        self._report(tmp_path)
        assert check_reports([tmp_path], require=["absent"],
                             emit=lambda _line: None) == 1
        assert check_reports([tmp_path], require=["demo"],
                             emit=lambda _line: None) == 0


class TestCLI:
    def test_lint_subcommand_exit_codes(self, tmp_path):
        from repro.analysis.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("key = hash(name)\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 1
        assert main(["lint", str(bad), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0

    def test_contracts_subcommand_clean(self):
        from repro.analysis.cli import main

        assert main(["contracts"]) == 0

    def test_explain_knows_every_rule(self):
        from repro.analysis.cli import main

        assert main(["explain"]) == 0
        assert main(["explain", "DET002", "PCK004", "ORD005"]) == 0
        assert main(["explain", "ZZZ999"]) == 1

"""Unit tests for the hypervisor / system-software layer."""

import numpy as np
import pytest

from repro.hypervisor.guest_os import GuestMemoryAllocator
from repro.hypervisor.host import Host, HostCapacityError, MemoryPartition
from repro.hypervisor.numa import NUMANode, VirtualNUMATopology, build_vm_topology
from repro.hypervisor.page_table import AccessBitScanner, HypervisorPageTable
from repro.hypervisor.slices import SliceTransitionModel
from repro.hypervisor.telemetry import (
    GuestCommittedCounter,
    PMUSample,
    TMACounters,
    TMA_FEATURE_NAMES,
    VMTelemetry,
)
from repro.hypervisor.vm import VMInstance, VMRequest


def make_request(cores=4, memory_gb=32.0, **kwargs):
    return VMRequest.create(cores=cores, memory_gb=memory_gb, **kwargs)


class TestVMRequestAndInstance:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            VMRequest(vm_id="x", cores=0, memory_gb=8)
        with pytest.raises(ValueError):
            VMRequest(vm_id="x", cores=2, memory_gb=0)
        with pytest.raises(ValueError):
            VMRequest(vm_id="x", cores=2, memory_gb=8, lifetime_hours=0)

    def test_instance_memory_split_must_match_request(self):
        req = make_request(memory_gb=32.0)
        with pytest.raises(ValueError):
            VMInstance(request=req, host_id="h", local_memory_gb=10.0, pool_memory_gb=10.0)

    def test_pool_fraction_and_untouched(self):
        req = make_request(memory_gb=32.0)
        vm = VMInstance(request=req, host_id="h", local_memory_gb=24.0, pool_memory_gb=8.0)
        assert vm.pool_fraction == pytest.approx(0.25)
        vm.record_touch(20.0)
        assert vm.untouched_memory_gb == pytest.approx(12.0)
        assert vm.spilled_gb == 0.0
        vm.record_touch(30.0)
        assert vm.spilled_gb == pytest.approx(6.0)

    def test_touch_is_monotone_high_water_mark(self):
        req = make_request(memory_gb=16.0)
        vm = VMInstance(request=req, host_id="h", local_memory_gb=16.0, pool_memory_gb=0.0)
        vm.record_touch(10.0)
        vm.record_touch(4.0)
        assert vm.touched_memory_gb == pytest.approx(10.0)
        vm.record_touch(100.0)
        assert vm.touched_memory_gb == pytest.approx(16.0)

    def test_terminate_and_double_terminate(self):
        req = make_request()
        vm = VMInstance(request=req, host_id="h", local_memory_gb=32.0, pool_memory_gb=0.0)
        vm.terminate(100.0)
        assert not vm.is_running
        with pytest.raises(RuntimeError):
            vm.terminate(200.0)

    def test_migrate_to_local_timing(self):
        req = make_request(memory_gb=32.0)
        vm = VMInstance(request=req, host_id="h", local_memory_gb=16.0, pool_memory_gb=16.0)
        duration = vm.migrate_to_local()
        # 50 ms per GB of pool memory (paper Section 4.2).
        assert duration == pytest.approx(0.05 * 16.0)
        assert vm.pool_memory_gb == 0.0
        assert vm.mitigated

    def test_metadata_contains_customer(self):
        req = make_request(customer_id="cust-1", workload_name="redis")
        meta = req.metadata()
        assert meta["customer_id"] == "cust-1"
        assert meta["workload_name"] == "redis"


class TestNUMATopology:
    def test_build_vm_topology_with_pool_creates_znuma(self):
        topo = build_vm_topology(cores=8, local_memory_gb=24.0, pool_memory_gb=8.0,
                                 pool_latency_ns=180.0)
        assert topo.has_znuma
        assert topo.znuma_memory_gb == pytest.approx(8.0)
        znuma = topo.znuma_nodes[0]
        assert znuma.cores == 0
        assert znuma.latency_ns == pytest.approx(180.0)

    def test_all_local_topology_has_no_znuma(self):
        topo = build_vm_topology(cores=4, local_memory_gb=16.0, pool_memory_gb=0.0)
        assert not topo.has_znuma
        assert len(topo.nodes) == 1

    def test_slit_matrix_reflects_latency_ratio(self):
        topo = build_vm_topology(cores=4, local_memory_gb=16.0, pool_memory_gb=16.0,
                                 pool_latency_ns=170.0, local_latency_ns=85.0)
        slit = topo.slit_matrix()
        assert slit[0, 0] == 10
        assert slit[0, 1] == 20  # 2x latency -> distance 20

    def test_allocation_order_prefers_local(self):
        topo = build_vm_topology(cores=4, local_memory_gb=8.0, pool_memory_gb=8.0)
        order = topo.allocation_order()
        assert not order[0].is_znuma
        assert order[-1].is_znuma

    def test_topology_requires_cpu_node(self):
        with pytest.raises(ValueError):
            VirtualNUMATopology([NUMANode(node_id=0, cores=0, memory_gb=8.0)])

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError):
            VirtualNUMATopology([
                NUMANode(node_id=0, cores=2, memory_gb=8.0),
                NUMANode(node_id=0, cores=0, memory_gb=8.0),
            ])

    def test_describe_mentions_znuma(self):
        topo = build_vm_topology(cores=2, local_memory_gb=4.0, pool_memory_gb=4.0)
        assert "zNUMA" in topo.describe()


class TestGuestAllocator:
    def make(self, local=32.0, pool=32.0):
        topo = build_vm_topology(cores=8, local_memory_gb=local, pool_memory_gb=pool)
        return topo, GuestMemoryAllocator(topo)

    def test_allocation_fills_local_first(self):
        topo, alloc = self.make()
        placement = alloc.allocate(16.0)
        assert set(placement) == {0}
        placement = alloc.allocate(20.0)
        assert 1 in placement  # spills only after local is full

    def test_working_set_within_local_keeps_znuma_traffic_tiny(self):
        topo, alloc = self.make(local=40.0, pool=24.0)
        profile = alloc.run_workload(working_set_gb=30.0)
        assert profile.znuma_traffic_fraction(topo) < 0.005

    def test_spilled_working_set_sends_traffic_to_znuma(self):
        topo, alloc = self.make(local=16.0, pool=48.0)
        profile = alloc.run_workload(working_set_gb=40.0)
        assert profile.znuma_traffic_fraction(topo) > 0.3

    def test_out_of_memory_raises(self):
        topo, alloc = self.make(local=8.0, pool=8.0)
        with pytest.raises(MemoryError):
            alloc.allocate(32.0)

    def test_free_respects_kernel_floor(self):
        topo, alloc = self.make()
        alloc.allocate(10.0)
        with pytest.raises(ValueError):
            alloc.free(0, 100.0)

    def test_negative_allocation_rejected(self):
        _, alloc = self.make()
        with pytest.raises(ValueError):
            alloc.allocate(-1.0)


class TestPageTable:
    def test_untouched_accounting(self):
        table = HypervisorPageTable(vm_memory_gb=8.0, local_memory_gb=6.0)
        assert table.untouched_fraction == pytest.approx(1.0)
        table.touch_gb(4.0)
        assert table.untouched_gb == pytest.approx(4.0, abs=0.1)

    def test_access_bit_reset_preserves_ever_accessed(self):
        table = HypervisorPageTable(vm_memory_gb=2.0, local_memory_gb=2.0)
        table.touch_gb(1.0)
        before = table.untouched_pages
        table.reset_access_bits()
        assert table.accessed_pages == 0
        assert table.untouched_pages == before

    def test_pool_page_classification(self):
        table = HypervisorPageTable(vm_memory_gb=4.0, local_memory_gb=2.0)
        assert not table.is_pool_page(0)
        assert table.is_pool_page(table.n_pages - 1)

    def test_touch_range_bounds_checked(self):
        table = HypervisorPageTable(vm_memory_gb=1.0, local_memory_gb=1.0)
        with pytest.raises(IndexError):
            table.touch_range(0, table.n_pages + 1)
        with pytest.raises(IndexError):
            table.touch(table.n_pages)

    def test_scanner_minimum_untouched_label(self):
        table = HypervisorPageTable(vm_memory_gb=8.0, local_memory_gb=8.0)
        scanner = AccessBitScanner()
        scanner.scan(table, now_s=0.0)
        table.touch_gb(6.0)
        scanner.scan(table, now_s=1800.0)
        assert scanner.minimum_untouched_fraction() == pytest.approx(0.25, abs=0.05)

    def test_scanner_overhead_fraction(self):
        scanner = AccessBitScanner(interval_s=1800.0, scan_duration_s=10.0)
        assert scanner.overhead_fraction() == pytest.approx(10.0 / 1800.0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            HypervisorPageTable(vm_memory_gb=0.0, local_memory_gb=0.0)
        with pytest.raises(ValueError):
            HypervisorPageTable(vm_memory_gb=4.0, local_memory_gb=8.0)


class TestTelemetry:
    def make_counters(self, dram=0.2):
        return TMACounters(
            backend_bound=0.6, memory_bound=0.4, store_bound=0.1,
            dram_latency_bound=dram, llc_mpi=5.0, memory_bandwidth_gbps=20.0,
            memory_parallelism=4.0,
        )

    def test_counter_validation(self):
        with pytest.raises(ValueError):
            TMACounters(backend_bound=0.3, memory_bound=0.4, store_bound=0.1,
                        dram_latency_bound=0.2, llc_mpi=1, memory_bandwidth_gbps=1,
                        memory_parallelism=1)
        with pytest.raises(ValueError):
            TMACounters(backend_bound=1.5, memory_bound=0.4, store_bound=0.1,
                        dram_latency_bound=0.2, llc_mpi=1, memory_bandwidth_gbps=1,
                        memory_parallelism=1)

    def test_feature_vector_order(self):
        counters = self.make_counters()
        vec = counters.as_vector()
        assert len(vec) == len(TMA_FEATURE_NAMES)
        assert vec[TMA_FEATURE_NAMES.index("dram_latency_bound")] == pytest.approx(0.2)

    def test_vm_telemetry_aggregation(self):
        telem = VMTelemetry("vm-1")
        for i in range(10):
            telem.record_counters(float(i), self.make_counters(dram=0.1 + 0.02 * i))
        assert telem.n_samples == 10
        mean = telem.mean_features()
        assert mean[TMA_FEATURE_NAMES.index("dram_latency_bound")] == pytest.approx(0.19)
        percentiles = telem.percentile_features((50, 90))
        assert percentiles.shape == (2 * len(TMA_FEATURE_NAMES),)

    def test_vm_telemetry_rejects_foreign_samples(self):
        telem = VMTelemetry("vm-1")
        sample = PMUSample(vm_id="vm-2", time_s=0.0, counters=self.make_counters())
        with pytest.raises(ValueError):
            telem.record(sample)

    def test_telemetry_overhead_is_negligible(self):
        telem = VMTelemetry("vm-1", sample_interval_s=1.0)
        assert telem.overhead_fraction(sample_cost_ms=1.0) == pytest.approx(0.001)

    def test_guest_committed_counter(self):
        counter = GuestCommittedCounter(vm_memory_gb=64.0)
        counter.record(0.0, 10.0)
        counter.record(60.0, 40.0)
        counter.record(120.0, 20.0)
        assert counter.peak_committed_gb == pytest.approx(40.0)
        assert counter.untouched_estimate_gb() == pytest.approx(24.0)
        assert counter.untouched_estimate_fraction() == pytest.approx(0.375)


class TestSliceTransitions:
    def test_offline_duration_within_paper_range(self):
        model = SliceTransitionModel(seed=1)
        record = model.offline_slices(10)
        # 10-100 ms per GB => 0.1-1.0 s for 10 slices.
        assert 0.1 <= record.duration_s <= 1.0

    def test_online_is_orders_of_magnitude_faster(self):
        model = SliceTransitionModel(seed=2)
        online = model.online_slices(10).duration_s
        offline = model.offline_slices(10).duration_s
        assert online < offline / 100.0

    def test_offline_speed_percentiles(self):
        model = SliceTransitionModel(seed=3)
        for _ in range(50):
            model.offline_slices(8)
        p50 = model.offline_speed_percentile(50)
        assert 8 <= p50 <= 110  # GB/s given 10-100 ms/GB

    def test_zero_slices_is_noop(self):
        model = SliceTransitionModel(seed=4)
        assert model.online_slices(0).duration_s == 0.0
        assert model.offline_slices(0).duration_s == 0.0

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            SliceTransitionModel(offline_ms_per_gb_range=(0, 10))
        with pytest.raises(ValueError):
            SliceTransitionModel(online_us_per_gb_range=(10, 1))


class TestMemoryPartitionAndHost:
    def test_partition_allocation_bounds(self):
        part = MemoryPartition(name="p", capacity_gb=10.0)
        part.allocate(6.0)
        assert part.free_gb == pytest.approx(4.0)
        with pytest.raises(HostCapacityError):
            part.allocate(5.0)
        part.release(6.0)
        with pytest.raises(ValueError):
            part.release(1.0)

    def test_partition_shrink_respects_allocation(self):
        part = MemoryPartition(name="p", capacity_gb=10.0, allocated_gb=6.0)
        with pytest.raises(HostCapacityError):
            part.shrink(6.0)
        part.shrink(4.0)
        assert part.capacity_gb == pytest.approx(6.0)

    def make_host(self):
        return Host(host_id="h1", total_cores=48, local_memory_gb=384.0,
                    pool_latency_ns=180.0)

    def test_place_and_terminate_vm(self):
        host = self.make_host()
        host.online_pool_memory(64.0)
        req = make_request(cores=8, memory_gb=64.0)
        vm = host.place_vm(req, local_gb=48.0, pool_gb=16.0)
        assert host.free_cores == 40
        assert host.free_pool_gb == pytest.approx(48.0)
        host.terminate_vm(vm.vm_id, time_s=10.0)
        assert host.free_cores == 48
        assert host.free_pool_gb == pytest.approx(64.0)

    def test_cannot_place_beyond_capacity(self):
        host = self.make_host()
        req = make_request(cores=64, memory_gb=64.0)
        with pytest.raises(HostCapacityError):
            host.place_vm(req, local_gb=64.0, pool_gb=0.0)

    def test_pool_placement_requires_onlined_slices(self):
        host = self.make_host()
        req = make_request(cores=4, memory_gb=32.0)
        with pytest.raises(HostCapacityError):
            host.place_vm(req, local_gb=16.0, pool_gb=16.0)

    def test_stranded_memory_definition(self):
        host = Host(host_id="h", total_cores=8, local_memory_gb=64.0)
        req = make_request(cores=8, memory_gb=32.0)
        host.place_vm(req, local_gb=32.0, pool_gb=0.0)
        assert host.free_cores == 0
        assert host.stranded_memory_gb == pytest.approx(32.0)

    def test_no_stranding_with_free_cores(self):
        host = self.make_host()
        req = make_request(cores=4, memory_gb=32.0)
        host.place_vm(req, local_gb=32.0, pool_gb=0.0)
        assert host.stranded_memory_gb == 0.0

    def test_mitigation_moves_pool_to_local(self):
        host = self.make_host()
        host.online_pool_memory(32.0)
        req = make_request(cores=4, memory_gb=64.0)
        vm = host.place_vm(req, local_gb=32.0, pool_gb=32.0)
        duration = host.mitigate_vm(vm.vm_id)
        assert duration == pytest.approx(0.05 * 32.0)
        assert vm.pool_memory_gb == 0.0
        assert host.free_pool_gb == pytest.approx(32.0)

    def test_vm_topology_exposes_znuma(self):
        host = self.make_host()
        host.online_pool_memory(16.0)
        req = make_request(cores=4, memory_gb=32.0)
        vm = host.place_vm(req, local_gb=16.0, pool_gb=16.0)
        topo = host.vm_topology(vm.vm_id)
        assert topo.has_znuma
        assert topo.znuma_nodes[0].latency_ns == pytest.approx(180.0)

    def test_offline_pool_memory_cannot_cut_into_allocations(self):
        host = self.make_host()
        host.online_pool_memory(16.0)
        req = make_request(cores=4, memory_gb=32.0)
        host.place_vm(req, local_gb=16.0, pool_gb=16.0)
        with pytest.raises(HostCapacityError):
            host.offline_pool_memory(8.0)

"""Tests for the cluster scheduler, simulator, stranding analysis, and pooling."""

import numpy as np
import pytest

from repro.cluster.pool import PoolDimensioner, fixed_fraction_policy
from repro.cluster.scheduler import PlacementError, VMScheduler
from repro.cluster.server import ClusterServer, ServerConfig
from repro.cluster.simulator import ClusterSimulator, SampleBuffer
from repro.cluster.stranding import StrandingAnalyzer, stranding_vs_utilization
from repro.cluster.trace import ClusterTrace, VMTraceRecord
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator


def make_trace(n_vms=60, cores=4, memory_gb=16.0, lifetime_s=7200.0, spacing_s=60.0,
               untouched=0.5):
    records = [
        VMTraceRecord(
            vm_id=f"vm-{i}", cluster_id="test", arrival_s=i * spacing_s,
            lifetime_s=lifetime_s, cores=cores, memory_gb=memory_gb,
            untouched_fraction=untouched,
        )
        for i in range(n_vms)
    ]
    return ClusterTrace(records)


class TestVMScheduler:
    def make_servers(self, n=2):
        return [ClusterServer(f"s{i}", ServerConfig()) for i in range(n)]

    def test_best_fit_prefers_fuller_server(self):
        servers = self.make_servers(2)
        servers[0].place("warm", 20, 64.0, 0.0)
        scheduler = VMScheduler(servers)
        chosen = scheduler.select_server(4, 16.0, 0.0)
        assert chosen.server_id == "s0"

    def test_placement_error_when_nothing_fits(self):
        servers = self.make_servers(1)
        scheduler = VMScheduler(servers)
        with pytest.raises(PlacementError):
            scheduler.select_server(1000, 16.0, 0.0)

    def test_pool_accounting_on_place_and_remove(self):
        servers = self.make_servers(2)
        pool_free = {0: 100.0}
        groups = {s.server_id: 0 for s in servers}
        scheduler = VMScheduler(servers, pool_free, groups)
        server = scheduler.place("vm1", 4, 8.0, 32.0)
        assert pool_free[0] == pytest.approx(68.0)
        scheduler.remove("vm1", server)
        assert pool_free[0] == pytest.approx(100.0)

    def test_pool_capacity_limits_placement(self):
        servers = self.make_servers(1)
        scheduler = VMScheduler(servers, {0: 8.0}, {"s0": 0})
        with pytest.raises(PlacementError):
            scheduler.place("vm1", 4, 8.0, 32.0)

    def test_pool_request_without_group_rejected(self):
        servers = self.make_servers(1)
        scheduler = VMScheduler(servers)
        with pytest.raises(PlacementError):
            scheduler.place("vm1", 2, 4.0, 4.0)
        # The failed placement must not leak core/memory accounting.
        assert servers[0].used_cores == 0

    def test_empty_server_list_rejected(self):
        with pytest.raises(ValueError):
            VMScheduler([])


class TestClusterSimulator:
    def test_all_vms_placed_on_adequate_cluster(self):
        trace = make_trace(n_vms=40)
        sim = ClusterSimulator(n_servers=4, sample_interval_s=600.0)
        result = sim.run(trace)
        assert result.placed_vms == 40
        assert result.rejected_vms == 0

    def test_departures_release_capacity(self):
        # VMs live 1 hour and arrive every 6 minutes: concurrency ~10 VMs.
        trace = make_trace(n_vms=100, lifetime_s=3600.0, spacing_s=360.0)
        sim = ClusterSimulator(n_servers=2, sample_interval_s=600.0)
        result = sim.run(trace)
        assert result.placed_vms == 100
        running = result.sample_array("running_vms")
        assert running.max() <= 15

    def test_rejections_when_cluster_too_small(self):
        trace = make_trace(n_vms=60, cores=16, spacing_s=1.0, lifetime_s=864000.0)
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace)
        assert result.rejected_vms > 0

    def test_stranding_reported_when_cores_exhausted(self):
        # 24-core VMs with tiny memory: cores run out long before memory.
        trace = make_trace(n_vms=8, cores=24, memory_gb=8.0, spacing_s=1.0,
                           lifetime_s=86400.0)
        sim = ClusterSimulator(n_servers=2, sample_interval_s=600.0)
        result = sim.run(trace)
        stranded = result.sample_array("stranded_percent")
        assert stranded.max() > 50.0

    def test_pool_policy_moves_memory_to_pool(self):
        trace = make_trace(n_vms=30)
        sim = ClusterSimulator(n_servers=4, pool_size_sockets=4,
                               constrain_memory=False, sample_interval_s=600.0)
        result = sim.run(trace, policy=fixed_fraction_policy(0.5))
        assert result.average_pool_fraction == pytest.approx(0.5, abs=0.01)
        assert result.required_pool_dram_gb > 0

    def test_peak_accounting_consistency(self):
        trace = make_trace(n_vms=30)
        sim = ClusterSimulator(n_servers=4, constrain_memory=False,
                               sample_interval_s=600.0)
        result = sim.run(trace)
        assert result.required_local_dram_gb <= result.uniform_required_local_dram_gb + 1e-6
        assert result.uniform_required_local_dram_gb <= 4 * max(
            result.server_peak_local_gb.values()
        ) + 1e-6

    def test_pool_size_must_align_with_sockets(self):
        with pytest.raises(ValueError):
            ClusterSimulator(n_servers=2, pool_size_sockets=3)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ClusterSimulator(n_servers=0)
        with pytest.raises(ValueError):
            ClusterSimulator(n_servers=1, sample_interval_s=0.0)

    def test_precomputed_pool_array_matches_policy_callback(self):
        trace = make_trace(n_vms=30)
        policy = fixed_fraction_policy(0.5)
        sim = lambda: ClusterSimulator(n_servers=4, pool_size_sockets=4,
                                       constrain_memory=False,
                                       sample_interval_s=600.0)
        from_callback = sim().run(trace, policy=policy.__call__)
        from_array = sim().run(trace, pool_gb=policy.decide_batch(trace))
        assert from_array.placements == from_callback.placements
        assert from_array.pool_peak_gb == from_callback.pool_peak_gb
        assert from_array.server_peak_local_gb == from_callback.server_peak_local_gb

    def test_pool_array_is_clipped_to_vm_memory(self):
        trace = make_trace(n_vms=10, memory_gb=16.0)
        sim = ClusterSimulator(n_servers=2, pool_size_sockets=4,
                               constrain_memory=False, sample_interval_s=600.0)
        oversized = np.full(len(trace), 1e6)
        result = sim.run(trace, pool_gb=oversized)
        assert result.total_pool_gb_allocated == pytest.approx(10 * 16.0)

    def test_pool_array_length_must_match_trace(self):
        trace = make_trace(n_vms=5)
        sim = ClusterSimulator(n_servers=2, pool_size_sockets=4,
                               constrain_memory=False, sample_interval_s=600.0)
        with pytest.raises(ValueError):
            sim.run(trace, pool_gb=np.zeros(4))

    def test_pool_array_ignored_without_pool(self):
        trace = make_trace(n_vms=5)
        sim = ClusterSimulator(n_servers=2, sample_interval_s=600.0)
        result = sim.run(trace, pool_gb=np.full(len(trace), 8.0))
        assert result.total_pool_gb_allocated == 0.0


class TestSampleBuffer:
    N_COLUMNS = 8  # matches _SAMPLE_COLUMNS

    def row(self, value):
        return [float(value)] * self.N_COLUMNS

    def test_growth_beyond_initial_capacity(self):
        buffer = SampleBuffer(initial_capacity=2)
        for i in range(9):
            buffer.append_row(self.row(i))
        assert len(buffer) == 9
        assert buffer.rows().shape == (9, self.N_COLUMNS)
        assert buffer.column("time_s").tolist() == [float(i) for i in range(9)]
        # Backing storage doubled 2 -> 4 -> 8 -> 16.
        assert buffer._data.shape[0] == 16

    def test_growth_preserves_existing_rows_exactly(self):
        buffer = SampleBuffer(initial_capacity=1)
        rows = [self.row(v) for v in (3.5, -1.25, 7.0)]
        for row in rows:
            buffer.append_row(row)
        assert np.array_equal(buffer.rows(), np.array(rows))

    def test_drop_last_then_append_reuses_slot(self):
        buffer = SampleBuffer(initial_capacity=2)
        buffer.append_row(self.row(1))
        buffer.append_row(self.row(2))
        buffer.drop_last()
        assert len(buffer) == 1
        buffer.append_row(self.row(5))
        assert buffer.column("time_s").tolist() == [1.0, 5.0]

    def test_drop_last_on_empty_buffer_raises(self):
        buffer = SampleBuffer()
        with pytest.raises(IndexError):
            buffer.drop_last()
        buffer.append_row(self.row(1))
        buffer.drop_last()
        with pytest.raises(IndexError):
            buffer.drop_last()

    def test_dropped_row_is_not_visible_in_views(self):
        buffer = SampleBuffer(initial_capacity=4)
        buffer.append_row(self.row(1))
        buffer.append_row(self.row(2))
        buffer.drop_last()
        assert buffer.rows().shape == (1, self.N_COLUMNS)
        assert buffer.column("time_s").tolist() == [1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SampleBuffer(initial_capacity=0)
        buffer = SampleBuffer()
        with pytest.raises(AttributeError):
            buffer.column("nope")

    def test_version_bumps_on_every_mutation(self):
        buffer = SampleBuffer()
        v0 = buffer.version
        buffer.append_row(self.row(1))
        assert buffer.version == v0 + 1
        buffer.drop_last()
        assert buffer.version == v0 + 2


class TestSamplesCacheInvalidation:
    """`SimulationResult.samples` must not serve stale entries after a
    drop_last + append_row pair (same length, different content)."""

    def make_result(self):
        from repro.cluster.simulator import SimulationResult

        result = SimulationResult()
        result.sample_buffer.append_row([1.0] * 8)
        result.sample_buffer.append_row([2.0] * 8)
        return result

    def test_mutation_with_same_length_invalidates_cache(self):
        result = self.make_result()
        assert result.samples[-1].time_s == 2.0  # build + cache
        result.sample_buffer.drop_last()
        result.sample_buffer.append_row([9.0] * 8)
        assert len(result.sample_buffer) == 2
        assert result.samples[-1].time_s == 9.0  # stale cache would say 2.0

    def test_cache_reused_when_unchanged(self):
        result = self.make_result()
        first = result.samples
        assert result.samples is first

    def test_drop_alone_invalidates(self):
        result = self.make_result()
        assert len(result.samples) == 2
        result.sample_buffer.drop_last()
        assert len(result.samples) == 1


class TestHorizonGridReplacement:
    """The horizon sample replaces a grid sample landing exactly on the
    horizon (pre-arrival state) with the post-arrival end state."""

    def trace_with_arrival_at(self, time_s):
        records = [
            VMTraceRecord(vm_id="vm-early", cluster_id="t", arrival_s=0.0,
                          lifetime_s=500.0, cores=2, memory_gb=8.0),
            VMTraceRecord(vm_id="vm-final", cluster_id="t", arrival_s=time_s,
                          lifetime_s=500.0, cores=2, memory_gb=8.0),
        ]
        return ClusterTrace(records)

    def test_explicit_horizon_on_grid_emits_single_post_arrival_sample(self):
        trace = self.trace_with_arrival_at(7200.0)
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace, horizon_s=7200.0)
        times = result.sample_array("time_s")
        assert times.tolist() == [0.0, 3600.0, 7200.0]
        assert (np.diff(times) > 0).all()
        # The replaced sample reflects the arrival at the horizon.
        assert result.sample_array("running_vms").tolist() == [0, 0, 1]

    def test_explicit_horizon_off_grid_appends_final_sample(self):
        trace = self.trace_with_arrival_at(5400.0)
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace, horizon_s=5400.0)
        assert result.sample_array("time_s").tolist() == [0.0, 3600.0, 5400.0]
        assert result.sample_array("running_vms").tolist() == [0, 0, 1]

    def test_zero_length_trace_horizon(self):
        trace = ClusterTrace([
            VMTraceRecord(vm_id="vm-0", cluster_id="t", arrival_s=0.0,
                          lifetime_s=100.0, cores=1, memory_gb=4.0),
        ])
        sim = ClusterSimulator(n_servers=1, sample_interval_s=3600.0)
        result = sim.run(trace)
        # Arrival span is 0: exactly one sample, at t=0, post-arrival.
        assert result.sample_array("time_s").tolist() == [0.0]
        assert result.sample_array("running_vms").tolist() == [1]


class TestStrandingAnalysis:
    def run_cluster(self, utilization, seed=0):
        cfg = TraceGenConfig(n_servers=6, duration_days=1.0,
                             target_core_utilization=utilization, seed=seed)
        trace = TraceGenerator(cfg).generate()
        sim = ClusterSimulator(n_servers=6, sample_interval_s=3600.0)
        return sim.run(trace)

    def test_stranding_increases_with_utilization(self):
        low = self.run_cluster(0.5, seed=1)
        high = self.run_cluster(0.95, seed=1)
        assert (high.sample_array("stranded_percent").mean()
                >= low.sample_array("stranded_percent").mean())

    def test_bucketed_curve_structure(self):
        results = [self.run_cluster(u, seed=i) for i, u in enumerate((0.6, 0.8, 0.95))]
        buckets = stranding_vs_utilization(results)
        assert len(buckets) >= 1
        for bucket in buckets:
            assert bucket.p5_stranded_percent <= bucket.mean_stranded_percent
            assert bucket.mean_stranded_percent <= bucket.p95_stranded_percent

    def test_analyzer_percentiles_and_series(self):
        result = self.run_cluster(0.9, seed=2)
        analyzer = StrandingAnalyzer({"c0": result})
        assert analyzer.fleet_percentile(95) >= analyzer.fleet_percentile(5)
        days, series = analyzer.daily_average("c0")
        assert len(days) == len(series)
        with pytest.raises(KeyError):
            analyzer.time_series("missing")

    def test_analyzer_requires_results(self):
        with pytest.raises(ValueError):
            StrandingAnalyzer({})


class TestPoolDimensioner:
    @pytest.fixture(scope="class")
    def trace(self):
        cfg = TraceGenConfig(n_servers=8, duration_days=1.0,
                             target_core_utilization=0.85, seed=3)
        return TraceGenerator(cfg).generate()

    def test_pooling_reduces_required_dram(self, trace):
        dimensioner = PoolDimensioner(n_servers=8)
        savings = dimensioner.evaluate(trace, pool_size_sockets=8,
                                       policy=fixed_fraction_policy(0.5))
        assert savings.required_dram_percent < 100.0
        assert savings.savings_percent > 0.0

    def test_larger_pools_save_at_least_as_much(self, trace):
        dimensioner = PoolDimensioner(n_servers=8)
        sweep = dimensioner.sweep_pool_sizes(trace, [2, 8, 16],
                                             fixed_fraction_policy(0.5))
        required = [s.required_dram_percent for s in sweep]
        assert required[0] >= required[1] >= required[2] - 1.0

    def test_higher_pool_fraction_saves_more(self, trace):
        dimensioner = PoolDimensioner(n_servers=8)
        grid = dimensioner.sweep_fixed_fractions(trace, [16], [0.1, 0.5])
        assert (grid[0.5][0].required_dram_percent
                <= grid[0.1][0].required_dram_percent)

    def test_pool_size_zero_degenerates_to_baseline(self, trace):
        dimensioner = PoolDimensioner(n_servers=8)
        savings = dimensioner.evaluate(trace, 0, fixed_fraction_policy(0.3))
        assert savings.required_dram_percent == pytest.approx(100.0)
        assert savings.required_pool_dram_gb == 0.0

    def test_average_pool_fraction_reported(self, trace):
        dimensioner = PoolDimensioner(n_servers=8)
        savings = dimensioner.evaluate(trace, 8, fixed_fraction_policy(0.3))
        assert savings.average_pool_fraction == pytest.approx(0.3, abs=0.02)

    def test_capacity_search_mode_runs(self, trace):
        dimensioner = PoolDimensioner(n_servers=8, search_steps=4)
        savings = dimensioner.evaluate_capacity_search(
            trace, 8, fixed_fraction_policy(0.3)
        )
        assert savings.required_total_dram_gb > 0
        assert savings.baseline_dram_gb > 0

    def test_fixed_fraction_policy_validation(self):
        with pytest.raises(ValueError):
            fixed_fraction_policy(1.5)

    def test_fixed_fraction_batch_accepts_record_sequences(self, trace):
        policy = fixed_fraction_policy(0.3)
        whole = policy.decide_batch(trace)
        sliced = policy.decide_batch(trace.records[0::2])
        assert np.array_equal(sliced, whole[0::2])
        assert np.array_equal(whole, np.array([policy(r) for r in trace]))

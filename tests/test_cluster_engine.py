"""Differential tests for the array placement engine and the parallel
capacity search: the struct-of-arrays hot path (engine="array") must be
byte-identical to the object path, and parallel capacity-search probes must
return exactly the sequential search's PoolSavings."""

import numpy as np
import pytest

from repro.cluster.engine import (
    ArrayPlacementEngine,
    PLACEMENT_ENGINES,
    resolve_engine,
    validate_engine,
)
from repro.cluster.fleet import FleetSimulator, pond_policy_factory
from repro.cluster.pool import FixedFractionPolicy, PoolDimensioner
from repro.cluster.scheduler import PlacementError, VMScheduler
from repro.cluster.server import ClusterServer, ServerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.trace import ClusterTrace, VMTraceRecord
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator
from repro.core.policies import PondTracePolicy
from repro.core.prediction.combined import CombinedOperatingPoint

OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=1.5, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


def bulk_trace(seed, n_servers=10, duration_days=0.6, utilization=0.85):
    cfg = TraceGenConfig(
        cluster_id=f"engine-{seed}", n_servers=n_servers,
        duration_days=duration_days, target_core_utilization=utilization,
        mean_lifetime_hours=2.0, seed=seed,
    )
    return TraceGenerator(cfg).generate_bulk()


def assert_identical(array_result, object_result):
    """Byte equality of everything a simulation result exposes."""
    assert array_result.placements == object_result.placements
    assert array_result.placed_vms == object_result.placed_vms
    assert array_result.rejected_vms == object_result.rejected_vms
    assert array_result.server_peak_local_gb == object_result.server_peak_local_gb
    assert array_result.server_peak_total_gb == object_result.server_peak_total_gb
    assert array_result.pool_peak_gb == object_result.pool_peak_gb
    assert array_result.total_pool_gb_allocated \
        == object_result.total_pool_gb_allocated
    assert array_result.total_memory_gb_allocated \
        == object_result.total_memory_gb_allocated
    assert (array_result.sample_buffer.rows()
            == object_result.sample_buffer.rows()).all()


def run_both(trace_or_stream, policy=None, pool_gb=None, horizon_s=None, **kwargs):
    kwargs.setdefault("sample_interval_s", 1800.0)
    results = {}
    for engine in PLACEMENT_ENGINES:
        sim = ClusterSimulator(engine=engine, **kwargs)
        results[engine] = sim.run(
            trace_or_stream, policy=policy, pool_gb=pool_gb, horizon_s=horizon_s
        )
    return results["array"], results["object"]


class TestEngineResolution:
    def test_default_engine_is_array_under_indexed(self):
        assert resolve_engine(None, "indexed") == "array"
        assert ClusterSimulator(n_servers=1).engine == "array"

    def test_linear_strategy_defaults_to_object(self):
        assert resolve_engine(None, "linear") == "object"
        sim = ClusterSimulator(n_servers=1, scheduler_strategy="linear")
        assert sim.engine == "object"

    def test_array_engine_rejects_linear_strategy(self):
        with pytest.raises(ValueError):
            resolve_engine("array", "linear")
        with pytest.raises(ValueError):
            ClusterSimulator(n_servers=1, scheduler_strategy="linear",
                             engine="array")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            validate_engine("quantum")
        with pytest.raises(ValueError):
            ClusterSimulator(n_servers=1, engine="quantum")
        with pytest.raises(ValueError):
            PoolDimensioner(n_servers=1, engine="quantum")
        with pytest.raises(ValueError):
            FleetSimulator.sharded(1, TraceGenConfig(), engine="quantum")


class TestArrayObjectDifferential:
    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_memory_constrained_replay(self, seed):
        trace = bulk_trace(seed=seed)
        array_result, object_result = run_both(trace, n_servers=10)
        assert_identical(array_result, object_result)

    def test_rejection_heavy_replay(self):
        trace = bulk_trace(seed=7, n_servers=10, utilization=0.95)
        array_result, object_result = run_both(trace, n_servers=3)
        assert array_result.rejected_vms > 0
        assert_identical(array_result, object_result)

    def test_pooled_replay_with_capacity_limit(self):
        trace = bulk_trace(seed=41, n_servers=8, utilization=0.9)
        array_result, object_result = run_both(
            trace, policy=FixedFractionPolicy(0.4), n_servers=8,
            pool_size_sockets=8, pool_capacity_gb_per_group=600.0,
            constrain_memory=False,
        )
        assert array_result.total_pool_gb_allocated > 0
        assert_identical(array_result, object_result)

    def test_pond_policy_batch_and_callback_paths(self):
        trace = bulk_trace(seed=23, n_servers=8, utilization=0.9)
        policy = PondTracePolicy(OPERATING_POINT, seed=3)
        array_result, object_result = run_both(
            trace, policy=policy, n_servers=8, pool_size_sockets=16,
            constrain_memory=False,
        )
        assert_identical(array_result, object_result)
        callback = PondTracePolicy(OPERATING_POINT, seed=3)
        array_cb, object_cb = run_both(
            trace, policy=callback.__call__, n_servers=8, pool_size_sockets=16,
            constrain_memory=False,
        )
        assert_identical(array_cb, object_cb)
        assert array_cb.placements == array_result.placements

    def test_precomputed_pool_array(self):
        trace = bulk_trace(seed=11, n_servers=6)
        policy = FixedFractionPolicy(0.3)
        array_result, object_result = run_both(
            trace, pool_gb=policy.decide_batch(trace), n_servers=6,
            pool_size_sockets=8, constrain_memory=False,
        )
        assert_identical(array_result, object_result)

    def test_streamed_replay(self):
        cfg = TraceGenConfig(cluster_id="engine-stream", n_servers=8,
                             duration_days=0.5, target_core_utilization=0.9,
                             seed=13)
        stream = TraceGenerator(cfg).stream(chunk_size=256)
        array_result, object_result = run_both(stream, n_servers=8)
        assert_identical(array_result, object_result)
        # And streamed == materialised on the array engine.
        materialised = ClusterSimulator(
            n_servers=8, sample_interval_s=1800.0, engine="array"
        ).run(TraceGenerator(cfg).generate_bulk())
        assert_identical(array_result, materialised)

    def test_streamed_out_of_order_raises_same_error(self):
        records = [
            VMTraceRecord(vm_id="a", cluster_id="t", arrival_s=100.0,
                          lifetime_s=60.0, cores=1, memory_gb=1.0),
            VMTraceRecord(vm_id="b", cluster_id="t", arrival_s=50.0,
                          lifetime_s=60.0, cores=1, memory_gb=1.0),
        ]

        class BadStream:
            cluster_id = "t"

            def chunks(self):
                from repro.cluster.trace import TraceColumns
                yield TraceColumns.from_records(records)

        for engine in PLACEMENT_ENGINES:
            sim = ClusterSimulator(n_servers=1, engine=engine)
            with pytest.raises(ValueError, match="sorted by arrival"):
                sim.run(BadStream())

    def test_horizon_variants(self):
        trace = bulk_trace(seed=19, n_servers=4, duration_days=0.3)
        span = max(r.arrival_s for r in trace)
        for horizon in (None, span, span + 1800.0, span + 7200.0):
            array_result, object_result = run_both(
                trace, n_servers=4, horizon_s=horizon
            )
            assert_identical(array_result, object_result)


class TestVMSchedulerArrayFacade:
    def test_placements_and_mirrored_objects_match_under_churn(self):
        def build(engine):
            servers = [ClusterServer(f"s{i}", ServerConfig()) for i in range(6)]
            pool_free = {0: 500.0, 1: 500.0}
            groups = {f"s{i}": i // 3 for i in range(6)}
            return servers, VMScheduler(servers, pool_free, groups, engine=engine)

        array_servers, array_sched = build("array")
        object_servers, object_sched = build("object")
        rng = np.random.default_rng(5)
        live = []
        for step in range(300):
            if live and rng.uniform() < 0.35:
                vm_id, a_srv, o_srv = live.pop(int(rng.integers(len(live))))
                array_sched.remove(vm_id, a_srv)
                object_sched.remove(vm_id, o_srv)
                continue
            cores = int(rng.choice([1, 2, 4, 8, 16]))
            mem = float(cores * rng.choice([2.0, 4.0, 8.0]))
            pool = float(rng.choice([0.0, 4.0]))
            vm_id = f"vm-{step}"
            try:
                a_srv = array_sched.place(vm_id, cores, mem, pool)
            except PlacementError:
                a_srv = None
            try:
                o_srv = object_sched.place(vm_id, cores, mem, pool)
            except PlacementError:
                o_srv = None
            assert (a_srv is None) == (o_srv is None)
            if a_srv is None:
                continue
            assert a_srv.server_id == o_srv.server_id
            live.append((vm_id, a_srv, o_srv))
        assert array_sched.used_cores == object_sched.used_cores
        assert array_sched.used_local_gb == object_sched.used_local_gb
        assert array_sched.stranded_gb == object_sched.stranded_gb
        assert array_sched.running_vms == object_sched.running_vms
        assert array_sched.pool_free_gb == object_sched.pool_free_gb
        # The facade mirrors every mutation onto the server objects.
        for a_srv, o_srv in zip(array_servers, object_servers):
            assert a_srv.summary() == o_srv.summary()

    def test_snapshot_of_preplaced_servers(self):
        servers = [ClusterServer(f"s{i}", ServerConfig()) for i in range(2)]
        servers[0].place("warm", 20, 64.0, 0.0)
        scheduler = VMScheduler(servers, engine="array")
        assert scheduler.select_server(4, 16.0, 0.0).server_id == "s0"
        assert scheduler.used_cores == 20
        scheduler.remove("warm", servers[0])
        assert scheduler.used_cores == 0

    def test_heterogeneous_servers_rejected(self):
        servers = [
            ClusterServer("s0", ServerConfig()),
            ClusterServer("s1", ServerConfig(cores_per_socket=12)),
        ]
        with pytest.raises(ValueError, match="homogeneous"):
            VMScheduler(servers, engine="array")

    def test_pool_request_without_group_rejected(self):
        servers = [ClusterServer("s0", ServerConfig())]
        scheduler = VMScheduler(servers, engine="array")
        with pytest.raises(PlacementError):
            scheduler.place("vm1", 2, 4.0, 4.0)
        assert servers[0].used_cores == 0

    def test_wrong_server_remove_leaves_state_intact(self):
        servers = [ClusterServer(f"s{i}", ServerConfig()) for i in range(2)]
        scheduler = VMScheduler(servers, engine="array")
        placed_on = scheduler.place("vm1", 4, 8.0, 0.0)
        other = servers[1] if placed_on is servers[0] else servers[0]
        with pytest.raises(KeyError):
            scheduler.remove("vm1", other)
        # Engine and mirror are still in sync: the VM is removable properly.
        assert scheduler.running_vms == 1
        scheduler.remove("vm1", placed_on)
        assert scheduler.running_vms == 0
        assert scheduler.used_cores == 0

    def test_engine_select_matches_place(self):
        engine = ArrayPlacementEngine.for_cluster(4, ServerConfig())
        idx = engine.select(4, 16.0, 0.0)
        handle = engine.place(4, 16.0, 0.0)
        assert engine.vm_server[handle] == idx
        engine.remove(handle)
        assert engine.running_vms == 0
        assert engine.used_cores == 0


class TestParallelCapacitySearch:
    @pytest.fixture(scope="class")
    def trace(self):
        cfg = TraceGenConfig(n_servers=10, duration_days=0.8,
                             target_core_utilization=0.85, seed=7)
        return TraceGenerator(cfg).generate_bulk()

    def test_dimensioner_parallel_equals_sequential(self, trace):
        policy = FixedFractionPolicy(0.3)
        sequential = PoolDimensioner(n_servers=10, search_steps=4)
        parallel = PoolDimensioner(n_servers=10, search_steps=4, max_workers=2)
        assert parallel.evaluate_capacity_search(trace, 8, policy) \
            == sequential.evaluate_capacity_search(trace, 8, policy)

    def test_dimensioner_parallel_with_pond_policy(self, trace):
        sequential = PoolDimensioner(n_servers=10, search_steps=3)
        parallel = PoolDimensioner(n_servers=10, search_steps=3, max_workers=2)
        policy = PondTracePolicy(OPERATING_POINT, seed=3)
        assert parallel.evaluate_capacity_search(trace, 16, policy) \
            == sequential.evaluate_capacity_search(trace, 16, policy)

    def test_fleet_parallel_equals_sequential(self):
        base = TraceGenConfig(cluster_id="cap", n_servers=8, duration_days=0.6,
                              target_core_utilization=0.85, seed=11)
        factory = pond_policy_factory(OPERATING_POINT, seed=3)
        sequential = FleetSimulator.sharded(
            2, base, pool_size_sockets=8
        ).capacity_search(factory, search_steps=3)
        parallel = FleetSimulator.sharded(
            2, base, pool_size_sockets=8, max_workers=2
        ).capacity_search(factory, search_steps=3)
        assert parallel.savings == sequential.savings
        assert parallel.baseline_per_server_gb == sequential.baseline_per_server_gb
        assert parallel.pooled_per_server_gb == sequential.pooled_per_server_gb
        assert parallel.per_shard_pool_capacity_gb \
            == sequential.per_shard_pool_capacity_gb
        assert parallel.rejection_budget == sequential.rejection_budget
        assert parallel.total_vms == sequential.total_vms

    def test_fleet_parallel_streamed_pool_size_sweep(self):
        base = TraceGenConfig(cluster_id="cap-stream", n_servers=8,
                              duration_days=0.5, target_core_utilization=0.85,
                              seed=13)
        factory = pond_policy_factory(OPERATING_POINT, seed=3)
        sequential = FleetSimulator.sharded(
            2, base, pool_size_sockets=8, stream_chunk_size=256
        )
        parallel = FleetSimulator.sharded(
            2, base, pool_size_sockets=8, stream_chunk_size=256, max_workers=2
        )
        for pool_size in (8, 16, 0):
            assert parallel.capacity_search(
                factory, search_steps=3, pool_size_sockets=pool_size
            ).savings == sequential.capacity_search(
                factory, search_steps=3, pool_size_sockets=pool_size
            ).savings

    def test_parallel_dimensioner_still_accumulates_policy_stats(self, trace):
        """Worker probes run policy copies; their stat deltas must flow back
        into the caller's policy (fig21 reads policy.stats after the
        search), with the same ratios the sequential search produces."""
        sequential_policy = PondTracePolicy(OPERATING_POINT, seed=3)
        parallel_policy = PondTracePolicy(OPERATING_POINT, seed=3)
        PoolDimensioner(n_servers=10, search_steps=3).evaluate_capacity_search(
            trace, 8, sequential_policy
        )
        PoolDimensioner(
            n_servers=10, search_steps=3, max_workers=2
        ).evaluate_capacity_search(trace, 8, parallel_policy)
        assert parallel_policy.stats.n_vms > 0
        assert parallel_policy.stats.misprediction_percent == pytest.approx(
            sequential_policy.stats.misprediction_percent
        )
        assert parallel_policy.stats.pool_fraction_percent == pytest.approx(
            sequential_policy.stats.pool_fraction_percent
        )

    def test_parallel_policy_reuse_does_not_compound_stats(self, trace):
        """Probe copies must zero their stats: a policy reused across two
        parallel searches would otherwise ship its accumulated counts to the
        workers and get them merged back once per probe."""
        policy = PondTracePolicy(OPERATING_POINT, seed=3)
        dimensioner = PoolDimensioner(n_servers=10, search_steps=3, max_workers=2)
        dimensioner.evaluate_capacity_search(trace, 8, policy)
        first_ratio = policy.stats.pool_fraction_percent
        first_n = policy.stats.n_vms
        dimensioner.evaluate_capacity_search(trace, 8, policy)
        assert policy.stats.pool_fraction_percent == pytest.approx(first_ratio)
        # Memoised probes are not re-run, so the second call adds nothing
        # wildly disproportionate; without the reset the counts compound
        # (first_n shipped into every probe's delta).
        assert policy.stats.n_vms <= 2 * first_n

    def test_max_workers_validation(self):
        with pytest.raises(ValueError):
            PoolDimensioner(n_servers=1, max_workers=0)


class TestPolicyPickling:
    def test_batch_policies_pickle_without_digest_cache(self):
        import pickle

        policy = PondTracePolicy(OPERATING_POINT, seed=3)
        trace = bulk_trace(seed=3, n_servers=2, duration_days=0.1)
        before = policy.decide_batch(trace)
        clone = pickle.loads(pickle.dumps(policy))
        after = clone.decide_batch(trace)
        assert np.array_equal(before, after)

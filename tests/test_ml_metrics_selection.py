"""Unit tests for ML metrics and model-selection utilities."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    confusion_counts,
    false_positive_rate,
    insensitive_tradeoff_curve,
    mean_absolute_error,
    mean_pinball_loss,
    overprediction_tradeoff_curve,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.ml.model_selection import KFold, repeated_random_split, train_test_split


class TestBasicMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1, 1], [1, 0, 0, 1]) == pytest.approx(0.75)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_confusion_counts(self):
        tp, fp, tn, fn = confusion_counts([1, 1, 0, 0], [1, 0, 1, 0])
        assert (tp, fp, tn, fn) == (1, 1, 1, 1)

    def test_precision_recall(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_precision_zero_when_no_positive_predictions(self):
        assert precision_score([1, 1], [0, 0]) == 0.0
        assert recall_score([0, 0], [0, 0]) == 0.0

    def test_false_positive_rate_matches_one_minus_precision(self):
        y_true = [1, 0, 1, 0, 1]
        y_pred = [1, 1, 1, 0, 0]
        assert false_positive_rate(y_true, y_pred) == pytest.approx(
            1.0 - precision_score(y_true, y_pred)
        )

    def test_mae_and_pinball(self):
        assert mean_absolute_error([1, 2, 3], [1, 2, 5]) == pytest.approx(2 / 3)
        # Pinball loss at 0.5 is half the MAE.
        assert mean_pinball_loss([1, 2, 3], [1, 2, 5], alpha=0.5) == pytest.approx(1 / 3)

    def test_pinball_asymmetry(self):
        over = mean_pinball_loss([0.0], [1.0], alpha=0.1)
        under = mean_pinball_loss([1.0], [0.0], alpha=0.1)
        assert over > under


class TestCurves:
    def test_roc_auc_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_roc_auc_random_ranking_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        scores = rng.uniform(size=2000)
        assert roc_auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_roc_auc_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.3, 0.4])

    def test_precision_recall_curve_monotone_recall(self):
        y = [1, 0, 1, 1, 0]
        scores = [0.9, 0.8, 0.7, 0.4, 0.2]
        _, recalls, _ = precision_recall_curve(y, scores)
        assert np.all(np.diff(recalls) >= 0)

    def test_insensitive_tradeoff_curve_shapes(self):
        rng = np.random.default_rng(1)
        slowdowns = rng.uniform(0, 30, size=100)
        scores = -slowdowns + rng.normal(0, 1, size=100)
        fractions, fps = insensitive_tradeoff_curve(scores, slowdowns, pdm_percent=5.0)
        assert fractions.shape == fps.shape
        assert fractions.max() <= 100.0
        assert fps.min() >= 0.0
        # A perfect ranker has zero FP until the true insensitive pool is used up.
        perfect_fracs, perfect_fps = insensitive_tradeoff_curve(
            -slowdowns, slowdowns, pdm_percent=5.0
        )
        truly_insensitive = np.mean(slowdowns <= 5.0) * 100.0
        assert np.all(perfect_fps[perfect_fracs <= truly_insensitive] == 0.0)

    def test_insensitive_tradeoff_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            insensitive_tradeoff_curve([1, 2], [1, 2, 3], 5.0)

    def test_overprediction_curve_monotone_in_scale(self):
        rng = np.random.default_rng(2)
        actual = rng.uniform(0, 1, size=200)
        predicted = actual * 0.8
        avg, op = overprediction_tradeoff_curve(predicted, actual)
        assert np.all(np.diff(avg) >= -1e-9)
        assert np.all(np.diff(op) >= -1e-9)
        assert op[0] == 0.0


class TestModelSelection:
    def test_train_test_split_sizes(self):
        X = np.arange(100).reshape(50, 2)
        y = np.arange(50)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3, random_state=0)
        assert len(X_te) == 15
        assert len(X_tr) == 35
        assert len(y_tr) == 35

    def test_train_test_split_disjoint_and_complete(self):
        y = np.arange(40)
        y_tr, y_te = train_test_split(y, test_size=0.5, random_state=1)
        assert sorted(np.concatenate([y_tr, y_te]).tolist()) == list(range(40))

    def test_train_test_split_validates_inputs(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), np.arange(9))
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), test_size=1.5)
        with pytest.raises(ValueError):
            train_test_split()

    def test_kfold_covers_all_indices_once(self):
        kfold = KFold(n_splits=5, random_state=0)
        seen = []
        for train_idx, test_idx in kfold.split(23):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_kfold_validates(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(5))

    def test_repeated_random_split_count_and_sizes(self):
        splits = list(repeated_random_split(50, n_repeats=7, test_size=0.5, random_state=3))
        assert len(splits) == 7
        for train_idx, test_idx in splits:
            assert len(test_idx) == 25
            assert len(train_idx) == 25

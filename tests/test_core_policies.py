"""Tests for the trace-level allocation policies used in the savings simulations."""

import numpy as np
import pytest

from repro.cluster.trace import VMTraceRecord
from repro.core.policies import AllLocalPolicy, PondTracePolicy, StaticFractionPolicy
from repro.core.prediction.combined import CombinedOperatingPoint


def make_record(vm_id="vm-0", memory_gb=32.0, untouched=0.5):
    return VMTraceRecord(
        vm_id=vm_id, cluster_id="c", arrival_s=0.0, lifetime_s=3600.0,
        cores=4, memory_gb=memory_gb, untouched_fraction=untouched,
    )


OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=2.0, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


class TestAllLocalPolicy:
    def test_always_returns_zero_pool(self):
        policy = AllLocalPolicy()
        for i in range(10):
            assert policy(make_record(vm_id=f"v{i}")) == 0.0
        assert policy.stats.n_vms == 10
        assert policy.stats.pool_fraction_percent == 0.0
        assert policy.stats.misprediction_percent == 0.0


class TestStaticFractionPolicy:
    def test_fixed_fraction_allocation(self):
        policy = StaticFractionPolicy(fraction=0.15)
        pool = policy(make_record(memory_gb=100.0))
        assert pool == pytest.approx(15.0)
        assert policy.stats.pool_fraction_percent == pytest.approx(15.0)

    def test_mispredictions_only_when_pool_exceeds_untouched(self):
        never_touch = StaticFractionPolicy(fraction=0.10, touch_violation_probability=1.0)
        for i in range(50):
            never_touch(make_record(vm_id=f"a{i}", untouched=0.5))
        assert never_touch.stats.n_mispredictions == 0

        always_touch = StaticFractionPolicy(fraction=0.60, touch_violation_probability=1.0)
        for i in range(50):
            always_touch(make_record(vm_id=f"b{i}", untouched=0.1))
        assert always_touch.stats.n_mispredictions == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticFractionPolicy(fraction=1.5)
        with pytest.raises(ValueError):
            StaticFractionPolicy(touch_violation_probability=-0.1)


class TestPondTracePolicy:
    def test_pool_share_between_znuma_and_full(self):
        policy = PondTracePolicy(OPERATING_POINT, seed=1)
        record = make_record(memory_gb=64.0, untouched=0.5)
        pool = policy(record)
        # Expected share: li*mem + (1-li)*znuma, znuma <= untouched-ish.
        assert 0.0 <= pool <= record.memory_gb
        assert pool >= OPERATING_POINT.li_percent / 100.0 * record.memory_gb - 1e-9

    def test_deterministic_per_vm(self):
        policy_a = PondTracePolicy(OPERATING_POINT, seed=3)
        policy_b = PondTracePolicy(OPERATING_POINT, seed=3)
        records = [make_record(vm_id=f"v{i}", untouched=0.4) for i in range(20)]
        assert [policy_a(r) for r in records] == [policy_b(r) for r in records]

    def test_allocation_independent_of_call_order(self):
        records = [make_record(vm_id=f"v{i}", untouched=0.1 + 0.015 * i) for i in range(40)]
        forward = {r.vm_id: PondTracePolicy(OPERATING_POINT, seed=3)(r) for r in records}
        backward_policy = PondTracePolicy(OPERATING_POINT, seed=3)
        backward = {r.vm_id: backward_policy(r) for r in reversed(records)}
        assert forward == backward

    def test_average_pool_fraction_bounded_by_operating_point_and_untouched(self):
        policy = PondTracePolicy(OPERATING_POINT, seed=5)
        rng = np.random.default_rng(0)
        untouched_values = []
        for i in range(400):
            untouched = float(rng.uniform(0.2, 0.8))
            untouched_values.append(untouched)
            policy(make_record(vm_id=f"v{i}", memory_gb=32.0, untouched=untouched))
        li = OPERATING_POINT.li_percent
        # At least the fully-pool-backed share, at most LI plus the whole
        # untouched share of the remaining VMs.
        upper = li + (100.0 - li) * float(np.mean(untouched_values))
        assert li - 2.0 <= policy.stats.pool_fraction_percent <= upper + 2.0

    def test_misprediction_rate_stays_low(self):
        policy = PondTracePolicy(OPERATING_POINT, seed=7)
        rng = np.random.default_rng(1)
        for i in range(500):
            policy(make_record(vm_id=f"v{i}", untouched=float(rng.uniform(0.1, 0.9))))
        assert policy.stats.misprediction_percent < 5.0

    def test_higher_li_increases_pool_share(self):
        low = CombinedOperatingPoint(1.0, 1.0, li_percent=10.0, um_percent=20.0)
        high = CombinedOperatingPoint(1.0, 1.0, li_percent=50.0, um_percent=20.0)
        records = [make_record(vm_id=f"v{i}", untouched=0.5) for i in range(100)]
        low_policy = PondTracePolicy(low, seed=9)
        high_policy = PondTracePolicy(high, seed=9)
        low_total = sum(low_policy(r) for r in records)
        high_total = sum(high_policy(r) for r in records)
        assert high_total > low_total

    def test_validation(self):
        with pytest.raises(ValueError):
            PondTracePolicy(OPERATING_POINT, prediction_quantile=0.0)
        with pytest.raises(ValueError):
            PondTracePolicy(OPERATING_POINT, slice_gb=0)
        with pytest.raises(ValueError):
            PondTracePolicy(OPERATING_POINT, overprediction_excess=-1.0)

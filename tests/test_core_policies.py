"""Tests for the trace-level allocation policies used in the savings simulations."""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.cluster.trace import ClusterTrace, VMTraceRecord
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator
from repro.core.policies import (
    AllLocalPolicy,
    PondTracePolicy,
    StaticFractionPolicy,
    keyed_uniforms,
    stable_vm_digests,
)
from repro.core.prediction.combined import CombinedOperatingPoint


def make_record(vm_id="vm-0", memory_gb=32.0, untouched=0.5):
    return VMTraceRecord(
        vm_id=vm_id, cluster_id="c", arrival_s=0.0, lifetime_s=3600.0,
        cores=4, memory_gb=memory_gb, untouched_fraction=untouched,
    )


OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=2.0, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


class TestAllLocalPolicy:
    def test_always_returns_zero_pool(self):
        policy = AllLocalPolicy()
        for i in range(10):
            assert policy(make_record(vm_id=f"v{i}")) == 0.0
        assert policy.stats.n_vms == 10
        assert policy.stats.pool_fraction_percent == 0.0
        assert policy.stats.misprediction_percent == 0.0


class TestStaticFractionPolicy:
    def test_fixed_fraction_allocation(self):
        policy = StaticFractionPolicy(fraction=0.15)
        pool = policy(make_record(memory_gb=100.0))
        assert pool == pytest.approx(15.0)
        assert policy.stats.pool_fraction_percent == pytest.approx(15.0)

    def test_mispredictions_only_when_pool_exceeds_untouched(self):
        never_touch = StaticFractionPolicy(fraction=0.10, touch_violation_probability=1.0)
        for i in range(50):
            never_touch(make_record(vm_id=f"a{i}", untouched=0.5))
        assert never_touch.stats.n_mispredictions == 0

        always_touch = StaticFractionPolicy(fraction=0.60, touch_violation_probability=1.0)
        for i in range(50):
            always_touch(make_record(vm_id=f"b{i}", untouched=0.1))
        assert always_touch.stats.n_mispredictions == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticFractionPolicy(fraction=1.5)
        with pytest.raises(ValueError):
            StaticFractionPolicy(touch_violation_probability=-0.1)


class TestPondTracePolicy:
    def test_pool_share_between_znuma_and_full(self):
        policy = PondTracePolicy(OPERATING_POINT, seed=1)
        record = make_record(memory_gb=64.0, untouched=0.5)
        pool = policy(record)
        # Expected share: li*mem + (1-li)*znuma, znuma <= untouched-ish.
        assert 0.0 <= pool <= record.memory_gb
        assert pool >= OPERATING_POINT.li_percent / 100.0 * record.memory_gb - 1e-9

    def test_deterministic_per_vm(self):
        policy_a = PondTracePolicy(OPERATING_POINT, seed=3)
        policy_b = PondTracePolicy(OPERATING_POINT, seed=3)
        records = [make_record(vm_id=f"v{i}", untouched=0.4) for i in range(20)]
        assert [policy_a(r) for r in records] == [policy_b(r) for r in records]

    def test_allocation_independent_of_call_order(self):
        records = [make_record(vm_id=f"v{i}", untouched=0.1 + 0.015 * i) for i in range(40)]
        forward = {r.vm_id: PondTracePolicy(OPERATING_POINT, seed=3)(r) for r in records}
        backward_policy = PondTracePolicy(OPERATING_POINT, seed=3)
        backward = {r.vm_id: backward_policy(r) for r in reversed(records)}
        assert forward == backward

    def test_average_pool_fraction_bounded_by_operating_point_and_untouched(self):
        policy = PondTracePolicy(OPERATING_POINT, seed=5)
        rng = np.random.default_rng(0)
        untouched_values = []
        for i in range(400):
            untouched = float(rng.uniform(0.2, 0.8))
            untouched_values.append(untouched)
            policy(make_record(vm_id=f"v{i}", memory_gb=32.0, untouched=untouched))
        li = OPERATING_POINT.li_percent
        # At least the fully-pool-backed share, at most LI plus the whole
        # untouched share of the remaining VMs.
        upper = li + (100.0 - li) * float(np.mean(untouched_values))
        assert li - 2.0 <= policy.stats.pool_fraction_percent <= upper + 2.0

    def test_misprediction_rate_stays_low(self):
        policy = PondTracePolicy(OPERATING_POINT, seed=7)
        rng = np.random.default_rng(1)
        for i in range(500):
            policy(make_record(vm_id=f"v{i}", untouched=float(rng.uniform(0.1, 0.9))))
        assert policy.stats.misprediction_percent < 5.0

    def test_higher_li_increases_pool_share(self):
        low = CombinedOperatingPoint(1.0, 1.0, li_percent=10.0, um_percent=20.0)
        high = CombinedOperatingPoint(1.0, 1.0, li_percent=50.0, um_percent=20.0)
        records = [make_record(vm_id=f"v{i}", untouched=0.5) for i in range(100)]
        low_policy = PondTracePolicy(low, seed=9)
        high_policy = PondTracePolicy(high, seed=9)
        low_total = sum(low_policy(r) for r in records)
        high_total = sum(high_policy(r) for r in records)
        assert high_total > low_total

    def test_validation(self):
        with pytest.raises(ValueError):
            PondTracePolicy(OPERATING_POINT, prediction_quantile=0.0)
        with pytest.raises(ValueError):
            PondTracePolicy(OPERATING_POINT, slice_gb=0)
        with pytest.raises(ValueError):
            PondTracePolicy(OPERATING_POINT, overprediction_excess=-1.0)


class TestKeyedUniforms:
    def test_deterministic_and_in_unit_interval(self):
        ids = [f"vm-{i}" for i in range(5000)]
        digests = stable_vm_digests(ids, "pond-trace", 7)
        u1 = keyed_uniforms(digests, 4)
        u2 = keyed_uniforms(digests, 4)
        assert (u1 == u2).all()
        assert (u1 >= 0.0).all() and (u1 < 1.0).all()

    def test_streams_and_seeds_decorrelate(self):
        ids = [f"vm-{i}" for i in range(20000)]
        u = keyed_uniforms(stable_vm_digests(ids, "pond-trace", 7), 2)
        other_seed = keyed_uniforms(stable_vm_digests(ids, "pond-trace", 8), 1)
        # Uniform-ish marginals and no cross-stream / cross-seed correlation.
        assert abs(u[:, 0].mean() - 0.5) < 0.02
        assert abs(np.corrcoef(u[:, 0], u[:, 1])[0, 1]) < 0.03
        assert abs(np.corrcoef(u[:, 0], other_seed[:, 0])[0, 1]) < 0.03

    def test_digest_tag_separates_policies(self):
        ids = [f"vm-{i}" for i in range(100)]
        assert not (stable_vm_digests(ids, "pond-trace", 0)
                    == stable_vm_digests(ids, "static-fraction", 0)).all()


@pytest.fixture(scope="module")
def big_trace():
    """A >=50k-VM bulk trace for the batch-vs-scalar differential tests."""
    cfg = TraceGenConfig(
        cluster_id="diff", n_servers=150, duration_days=2.1,
        mean_lifetime_hours=2.0, target_core_utilization=0.85, seed=17,
    )
    trace = TraceGenerator(cfg).generate_bulk()
    assert len(trace) >= 50_000
    return trace


class TestBatchScalarDifferential:
    """decide_batch must match the scalar __call__ path decision-for-decision."""

    POLICIES = {
        "all_local": lambda: AllLocalPolicy(),
        "static": lambda: StaticFractionPolicy(fraction=0.15, seed=5),
        "pond": lambda: PondTracePolicy(OPERATING_POINT, seed=5),
    }

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_batch_matches_scalar_on_50k_trace(self, big_trace, name):
        make = self.POLICIES[name]
        scalar_policy, batch_policy = make(), make()
        scalar = np.array([scalar_policy(record) for record in big_trace])
        batch = batch_policy.decide_batch(big_trace)
        assert np.array_equal(scalar, batch)
        # PolicyStats fields match: counts exactly, float accumulators to
        # summation-order precision.
        assert batch_policy.stats.n_vms == scalar_policy.stats.n_vms == len(big_trace)
        assert batch_policy.stats.n_fully_pool_backed == scalar_policy.stats.n_fully_pool_backed
        assert batch_policy.stats.n_znuma == scalar_policy.stats.n_znuma
        assert batch_policy.stats.n_all_local == scalar_policy.stats.n_all_local
        assert batch_policy.stats.n_mispredictions == scalar_policy.stats.n_mispredictions
        assert batch_policy.stats.pool_gb == pytest.approx(
            scalar_policy.stats.pool_gb, rel=1e-9
        )
        assert batch_policy.stats.total_gb == pytest.approx(
            scalar_policy.stats.total_gb, rel=1e-9
        )

    def test_batch_accepts_plain_record_sequences(self):
        records = [make_record(vm_id=f"v{i}", untouched=0.3) for i in range(64)]
        from_list = PondTracePolicy(OPERATING_POINT, seed=2).decide_batch(records)
        from_trace = PondTracePolicy(OPERATING_POINT, seed=2).decide_batch(
            ClusterTrace(records)
        )
        assert np.array_equal(from_list, from_trace)

    def test_sharded_evaluation_equals_whole_trace(self, big_trace):
        """Partitioning a trace across shards cannot change any decision."""
        whole = PondTracePolicy(OPERATING_POINT, seed=5).decide_batch(big_trace)
        sharded_policy = PondTracePolicy(OPERATING_POINT, seed=5)
        n_shards = 4
        pieces = [
            sharded_policy.decide_batch(big_trace.records[k::n_shards])
            for k in range(n_shards)
        ]
        reassembled = np.empty_like(whole)
        for k, piece in enumerate(pieces):
            reassembled[k::n_shards] = piece
        assert np.array_equal(whole, reassembled)


class TestStaticFractionOrderIndependence:
    def test_mispredictions_do_not_depend_on_call_order(self):
        rng = np.random.default_rng(3)
        records = [
            make_record(vm_id=f"v{i}", memory_gb=32.0,
                        untouched=float(rng.uniform(0.05, 0.25)))
            for i in range(400)
        ]
        forward = StaticFractionPolicy(fraction=0.3, seed=1)
        backward = StaticFractionPolicy(fraction=0.3, seed=1)
        for record in records:
            forward(record)
        for record in reversed(records):
            backward(record)
        assert forward.stats.n_mispredictions == backward.stats.n_mispredictions
        assert forward.stats.n_mispredictions > 0

    def test_per_vm_violation_verdict_is_stable(self):
        record = make_record(vm_id="touchy", memory_gb=32.0, untouched=0.1)
        verdicts = []
        for _ in range(3):
            policy = StaticFractionPolicy(fraction=0.5, seed=9)
            policy(record)
            verdicts.append(policy.stats.n_mispredictions)
        assert len(set(verdicts)) == 1


_SUBPROCESS_SNIPPET = """
import numpy as np
from repro.cluster.trace import VMTraceRecord
from repro.core.policies import PondTracePolicy, StaticFractionPolicy
from repro.core.prediction.combined import CombinedOperatingPoint

point = CombinedOperatingPoint(fp_percent=2.0, op_percent=2.0,
                               li_percent=30.0, um_percent=22.0)
records = [
    VMTraceRecord(vm_id=f"cluster-7-vm-{i}", cluster_id="c", arrival_s=0.0,
                  lifetime_s=3600.0, cores=4, memory_gb=32.0,
                  untouched_fraction=0.05 + 0.009 * i)
    for i in range(100)
]
pond = PondTracePolicy(point, seed=3)
static = StaticFractionPolicy(fraction=0.4, seed=3)
print(repr([pond(r) for r in records]))
print(repr([static(r) for r in records]))
print(pond.stats.n_mispredictions, static.stats.n_mispredictions)
"""


class TestCrossProcessDeterminism:
    """Decisions must not depend on PYTHONHASHSEED (the old ``hash()`` digest
    did, so sharded workers could disagree about the same VM)."""

    def _decisions(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        return proc.stdout

    def test_decisions_identical_across_hash_seeds(self):
        baseline = self._decisions("0")
        assert "[" in baseline  # sanity: decisions were printed
        assert self._decisions("12345") == baseline
        assert self._decisions("random") == baseline

    def test_in_process_decisions_match_subprocess(self):
        """The parent process agrees with its (differently-hashed) workers."""
        out = self._decisions("1")
        point = CombinedOperatingPoint(fp_percent=2.0, op_percent=2.0,
                                       li_percent=30.0, um_percent=22.0)
        pond = PondTracePolicy(point, seed=3)
        records = [
            VMTraceRecord(vm_id=f"cluster-7-vm-{i}", cluster_id="c", arrival_s=0.0,
                          lifetime_s=3600.0, cores=4, memory_gb=32.0,
                          untouched_fraction=0.05 + 0.009 * i)
            for i in range(100)
        ]
        expected = repr([pond(r) for r in records])
        assert out.splitlines()[0] == expected

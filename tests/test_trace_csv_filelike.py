"""CSV trace I/O over open file objects (the ``Path(path)`` crash fix).

``to_csv(io.StringIO())`` used to raise ``TypeError`` because every CSV
entry point did ``Path(path)`` unconditionally.  All four entry points --
``write_csv``, ``ClusterTrace.to_csv`` / ``from_csv``, and
``CsvTraceStream`` -- now accept open text handles, leave them open for the
caller, and round-trip byte-identically with the path-based forms.
"""

import io

import pytest

from repro.cluster.trace import (
    ClusterTrace,
    CsvTraceStream,
    VMTraceRecord,
    write_csv,
)
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator


@pytest.fixture(scope="module")
def trace():
    cfg = TraceGenConfig(cluster_id="csvio", n_servers=4, duration_days=0.1,
                         seed=3)
    return TraceGenerator(cfg).generate_bulk()


class TestFileLikeWriters:
    def test_to_csv_stringio_matches_path_output(self, trace, tmp_path):
        buffer = io.StringIO()
        trace.to_csv(buffer)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        assert buffer.getvalue() == path.open(newline="").read()
        assert not buffer.closed  # caller owns the handle

    def test_write_csv_stream_to_stringio(self, trace):
        buffer = io.StringIO()
        rows = write_csv(trace.stream(chunk_size=16), buffer)
        assert rows == len(trace)
        direct = io.StringIO()
        trace.to_csv(direct)
        assert buffer.getvalue() == direct.getvalue()

    def test_open_file_handle_written_in_place(self, trace, tmp_path):
        path = tmp_path / "handle.csv"
        with path.open("w", newline="") as handle:
            handle.write("# preamble\n")
            trace.to_csv(handle)
        text = path.open(newline="").read()
        assert text.startswith("# preamble\n")
        body = text[len("# preamble\n"):]
        direct = io.StringIO()
        trace.to_csv(direct)
        assert body == direct.getvalue()


class TestFileLikeReaders:
    def test_from_csv_stringio_round_trip(self, trace):
        buffer = io.StringIO()
        trace.to_csv(buffer)
        buffer.seek(0)
        back = ClusterTrace.from_csv(buffer)
        assert back.records == trace.records

    def test_from_csv_error_labels_stream(self):
        bad = io.StringIO("vm_id,cluster_id\nv0,c0\n")
        with pytest.raises(ValueError, match="<stream>.*arrival_s"):
            ClusterTrace.from_csv(bad)

    def test_csv_stream_stringio_reiterable(self, trace):
        buffer = io.StringIO()
        trace.to_csv(buffer)
        buffer.seek(0)  # the stream reads from the position at construction
        stream = CsvTraceStream(buffer, chunk_size=7)
        assert stream.cluster_id == "csv-stream"
        first = stream.materialize()
        second = stream.materialize()  # seekable handles rewind per pass
        assert first.records == trace.records == second.records

    def test_csv_stream_replays_through_simulator(self, trace):
        from repro.cluster.simulator import ClusterSimulator

        buffer = io.StringIO()
        trace.to_csv(buffer)
        buffer.seek(0)
        stream = CsvTraceStream(buffer, chunk_size=11)
        sim = ClusterSimulator(n_servers=4, constrain_memory=False)
        streamed = sim.run(stream)
        direct = ClusterSimulator(n_servers=4, constrain_memory=False).run(trace)
        assert streamed.placed_vms == direct.placed_vms
        assert streamed.server_peak_local_gb == direct.server_peak_local_gb

    def test_non_seekable_handle_single_shot(self, trace):
        buffer = io.StringIO()
        trace.to_csv(buffer)

        class OneShot:
            """Text handle without seek support (pipe-like)."""

            def __init__(self, text):
                self._inner = io.StringIO(text)
                self.read = self._inner.read
                self.readline = self._inner.readline

            def __iter__(self):
                return iter(self._inner)

            def seekable(self):
                return False

        stream = CsvTraceStream(OneShot(buffer.getvalue()), chunk_size=8)
        assert stream.materialize().records == trace.records
        with pytest.raises(ValueError, match="already consumed"):
            stream.materialize()

    def test_unsorted_stream_error_names_stream_label(self):
        rows = io.StringIO()
        ClusterTrace([
            VMTraceRecord(vm_id="b", cluster_id="c", arrival_s=5.0,
                          lifetime_s=1.0, cores=1, memory_gb=1.0),
        ]).to_csv(rows)
        text = rows.getvalue()
        # Append an out-of-order row manually.
        text += "a,c,1.0,1.0,1,1.0,anon,general,linux,region-0,,0.5,\n"
        stream = CsvTraceStream(io.StringIO(text))
        with pytest.raises(ValueError, match="not sorted by"):
            stream.materialize()

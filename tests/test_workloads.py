"""Tests for the workload catalog, sensitivity models, PMU features, memory behaviour."""

import numpy as np
import pytest

from repro.hypervisor.telemetry import TMA_FEATURE_NAMES
from repro.workloads.catalog import (
    CLASS_SIZES,
    Workload,
    WorkloadClass,
    build_catalog,
)
from repro.workloads.generator import PMUFeatureGenerator
from repro.workloads.memory_behavior import UntouchedMemoryModel, VMMemoryBehavior
from repro.workloads.sensitivity import (
    SCENARIO_182,
    SCENARIO_222,
    LatencyScenario,
    scenario_for_pool_size,
    slowdown_distribution,
    slowdown_under_latency,
    slowdown_under_spill,
)


class TestCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        return build_catalog(seed=7)

    def test_catalog_has_158_workloads(self, catalog):
        assert len(catalog) == 158
        assert sum(CLASS_SIZES.values()) == 158

    def test_class_sizes_match(self, catalog):
        for workload_class, size in CLASS_SIZES.items():
            assert len(catalog.by_class(workload_class)) == size

    def test_unique_names_and_lookup(self, catalog):
        assert len(set(catalog.names)) == 158
        name = catalog.names[0]
        assert catalog[name].name == name
        assert name in catalog

    def test_deterministic_given_seed(self):
        a = build_catalog(seed=3)
        b = build_catalog(seed=3)
        assert a.names == b.names
        assert np.allclose(a.sensitivities(), b.sensitivities())

    def test_gapbs_more_sensitive_than_proprietary(self, catalog):
        gapbs = np.median([w.latency_sensitivity for w in catalog.by_class(WorkloadClass.GAPBS)])
        prop = np.median([
            w.latency_sensitivity for w in catalog.by_class(WorkloadClass.PROPRIETARY)
        ])
        assert gapbs > prop

    def test_truncated_catalog(self):
        small = build_catalog(seed=1, n_workloads=10)
        assert len(small) == 10

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            Workload(name="w", workload_class=WorkloadClass.REDIS,
                     latency_sensitivity=-0.1, bandwidth_sensitivity=0.0,
                     access_skew=1.0, footprint_gb=8.0, untouched_fraction=0.5)
        with pytest.raises(ValueError):
            Workload(name="w", workload_class=WorkloadClass.REDIS,
                     latency_sensitivity=0.1, bandwidth_sensitivity=0.0,
                     access_skew=5.0, footprint_gb=8.0, untouched_fraction=0.5)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def catalog(self):
        return build_catalog(seed=7)

    def test_scenario_ratios_match_paper(self):
        assert SCENARIO_182.latency_increase_percent == pytest.approx(182.0, abs=1.0)
        assert SCENARIO_222.latency_increase_percent == pytest.approx(221.7, abs=1.0)

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            LatencyScenario("bad", local_latency_ns=100.0, pool_latency_ns=50.0)

    def test_bucket_shape_at_182(self, catalog):
        slowdowns = slowdown_distribution(list(catalog), SCENARIO_182)
        below_1 = (slowdowns < 1.0).mean()
        below_5 = (slowdowns < 5.0).mean()
        above_25 = (slowdowns > 25.0).mean()
        # Paper Section 3.3: 26% / 43% / 21%; allow generous tolerance.
        assert 0.15 <= below_1 <= 0.35
        assert 0.30 <= below_5 <= 0.52
        assert 0.12 <= above_25 <= 0.32

    def test_higher_latency_magnifies_slowdowns(self, catalog):
        s182 = slowdown_distribution(list(catalog), SCENARIO_182)
        s222 = slowdown_distribution(list(catalog), SCENARIO_222)
        assert s222.mean() > s182.mean()
        assert (s222 > 25.0).mean() > (s182 > 25.0).mean()

    def test_slowdown_never_negative(self, catalog):
        rng = np.random.default_rng(0)
        for workload in list(catalog)[:20]:
            assert slowdown_under_latency(workload, SCENARIO_182, noise_rng=rng) >= 0.0

    def test_spill_slowdown_monotone_in_spill(self, catalog):
        workload = max(catalog, key=lambda w: w.latency_sensitivity)
        values = [slowdown_under_spill(workload, SCENARIO_182, s)
                  for s in (0.0, 0.25, 0.5, 1.0)]
        assert values[0] == 0.0
        assert values == sorted(values)

    def test_spill_one_equals_full_pool_slowdown(self, catalog):
        workload = list(catalog)[0]
        assert slowdown_under_spill(workload, SCENARIO_182, 1.0) == pytest.approx(
            slowdown_under_latency(workload, SCENARIO_182)
        )

    def test_spill_fraction_validated(self, catalog):
        with pytest.raises(ValueError):
            slowdown_under_spill(list(catalog)[0], SCENARIO_182, 1.5)

    def test_scenario_for_pool_size_uses_topology_latency(self):
        scenario = scenario_for_pool_size(16)
        assert scenario.pool_latency_ns == pytest.approx(180.0)
        assert scenario_for_pool_size(8).pool_latency_ns == pytest.approx(155.0)


class TestPMUFeatureGenerator:
    @pytest.fixture(scope="class")
    def catalog(self):
        return build_catalog(seed=7)

    def test_counters_are_valid_tma(self, catalog):
        generator = PMUFeatureGenerator(seed=1)
        rng = np.random.default_rng(1)
        for workload in list(catalog)[:30]:
            counters = generator.counters_for(workload, rng)
            assert 0.0 <= counters.dram_latency_bound <= counters.memory_bound
            assert counters.memory_bound <= counters.backend_bound <= 1.0

    def test_dram_bound_correlates_with_sensitivity(self, catalog):
        generator = PMUFeatureGenerator(seed=2)
        rng = np.random.default_rng(2)
        sensitivities = []
        dram_bound = []
        for workload in catalog:
            sensitivities.append(workload.latency_sensitivity)
            dram_bound.append(generator.counters_for(workload, rng).dram_latency_bound)
        corr = np.corrcoef(sensitivities, dram_bound)[0, 1]
        assert corr > 0.8

    def test_training_set_shapes(self, catalog):
        generator = PMUFeatureGenerator(seed=3)
        training = generator.training_set(catalog, SCENARIO_182, samples_per_workload=2)
        assert training.features.shape == (2 * len(catalog), len(TMA_FEATURE_NAMES))
        assert len(training.slowdowns) == 2 * len(catalog)
        labels = training.insensitive_labels(pdm_percent=5.0)
        assert set(np.unique(labels)) <= {0, 1}

    def test_workload_level_set_is_noiseless_and_per_workload(self, catalog):
        generator = PMUFeatureGenerator(seed=4)
        eval_set = generator.workload_level_set(catalog, SCENARIO_182)
        assert len(eval_set) == len(catalog)

    def test_invalid_samples_per_workload(self, catalog):
        generator = PMUFeatureGenerator(seed=5)
        with pytest.raises(ValueError):
            generator.training_set(catalog, SCENARIO_182, samples_per_workload=0)


class TestMemoryBehavior:
    def test_population_median_untouched_near_half(self):
        model = UntouchedMemoryModel(n_customers=200, seed=11)
        rng = np.random.default_rng(11)
        samples = [model.sample_untouched_fraction(model.sample_customer(rng), rng=rng)
                   for _ in range(3000)]
        assert 0.35 <= float(np.median(samples)) <= 0.65

    def test_customer_consistency_reduces_variance(self):
        model = UntouchedMemoryModel(n_customers=50, seed=12)
        rng = np.random.default_rng(12)
        per_customer_std = []
        for customer in model.customer_ids[:20]:
            draws = [model.sample_untouched_fraction(customer, rng=rng) for _ in range(40)]
            per_customer_std.append(np.std(draws))
        population = [model.sample_untouched_fraction(model.sample_customer(rng), rng=rng)
                      for _ in range(800)]
        assert np.mean(per_customer_std) < np.std(population)

    def test_history_percentiles_are_sorted(self):
        model = UntouchedMemoryModel(n_customers=10, seed=13)
        history = model.customer_history_percentiles("customer-0000")
        assert np.all(np.diff(history) >= 0)

    def test_unknown_customer_rejected(self):
        model = UntouchedMemoryModel(n_customers=5, seed=14)
        with pytest.raises(KeyError):
            model.profile("customer-9999")

    def test_vm_memory_behavior_ramp(self):
        behaviour = VMMemoryBehavior(memory_gb=64.0, untouched_fraction=0.5,
                                     ramp_hours=2.0)
        assert behaviour.touched_gb_at(0.0) <= behaviour.touched_gb_at(1.0)
        assert behaviour.touched_gb_at(2.0) == pytest.approx(32.0)
        assert behaviour.touched_gb_at(10.0) == pytest.approx(32.0)
        assert behaviour.untouched_gb_at(10.0) == pytest.approx(32.0)

    def test_minimum_untouched_label(self):
        behaviour = VMMemoryBehavior(memory_gb=100.0, untouched_fraction=0.3)
        assert behaviour.minimum_untouched_fraction(lifetime_hours=24.0) == pytest.approx(0.3)

    def test_behavior_validation(self):
        with pytest.raises(ValueError):
            VMMemoryBehavior(memory_gb=0.0, untouched_fraction=0.5)
        with pytest.raises(ValueError):
            VMMemoryBehavior(memory_gb=8.0, untouched_fraction=1.5)
        behaviour = VMMemoryBehavior(memory_gb=8.0, untouched_fraction=0.5)
        with pytest.raises(ValueError):
            behaviour.touched_gb_at(-1.0)

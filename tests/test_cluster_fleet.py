"""Tests for the sharded fleet simulator and its batch-vs-callback parity."""

import numpy as np
import pytest

from repro.cluster.fleet import (
    FleetSimulator,
    all_local_policy_factory,
    pond_policy_factory,
    static_policy_factory,
)
from repro.cluster.tracegen import TraceGenConfig, fleet_shard_configs
from repro.core.prediction.combined import CombinedOperatingPoint

OPERATING_POINT = CombinedOperatingPoint(
    fp_percent=1.5, op_percent=2.0, li_percent=30.0, um_percent=22.0
)


def base_config(**kwargs):
    # Seed chosen so the pooled fleet shows positive DRAM savings at this
    # deliberately tiny scale (6 servers / 0.4 days is noisy: one shard's
    # worst-case pool-group peak can dominate and flip the sign).
    defaults = dict(cluster_id="fleet", n_servers=6, duration_days=0.4,
                    mean_lifetime_hours=2.0, target_core_utilization=0.85, seed=16)
    defaults.update(kwargs)
    return TraceGenConfig(**defaults)


@pytest.fixture(scope="module")
def pooled_fleet_runs():
    """One small pooled fleet run on each policy path (batch and callback)."""
    fleet = FleetSimulator.sharded(3, base_config(), pool_size_sockets=4)
    traces = fleet.generate_traces()
    factory = pond_policy_factory(OPERATING_POINT, seed=3)
    return {
        "fleet": fleet,
        "traces": traces,
        "batch": fleet.run(factory, traces=traces, batch=True),
        "callback": fleet.run(factory, traces=traces, batch=False),
    }


class TestFleetShape:
    def test_shard_ids_and_seeds_are_distinct(self):
        fleet = FleetSimulator.sharded(4, base_config())
        ids = [cfg.cluster_id for cfg in fleet.shard_configs]
        seeds = [cfg.seed for cfg in fleet.shard_configs]
        assert len(set(ids)) == 4
        assert seeds == [16, 17, 18, 19]

    def test_utilization_sweep_matches_tracegen_helper(self):
        base = base_config()
        fleet = FleetSimulator.utilization_sweep(
            3, base, utilization_range=(0.6, 0.9), seed=5
        )
        expected = fleet_shard_configs(3, base, (0.6, 0.9), seed=5)
        assert fleet.shard_configs == expected
        utils = [cfg.target_core_utilization for cfg in fleet.shard_configs]
        assert utils == pytest.approx([0.6, 0.75, 0.9])

    def test_shards_preserve_all_base_config_fields(self):
        base = base_config(shift_day=0.2, shift_memory_factor=4.0, warm_start=False)
        for fleet in (
            FleetSimulator.sharded(2, base),
            FleetSimulator.utilization_sweep(2, base, seed=5),
        ):
            for cfg in fleet.shard_configs:
                assert cfg.shift_day == 0.2
                assert cfg.shift_memory_factor == 4.0
                assert cfg.warm_start is False

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSimulator([])
        with pytest.raises(ValueError):
            FleetSimulator.sharded(0, base_config())
        duplicate = [base_config(), base_config()]
        with pytest.raises(ValueError):
            FleetSimulator(duplicate)
        fleet = FleetSimulator.sharded(2, base_config())
        with pytest.raises(ValueError):
            fleet.run(traces=[])
        with pytest.raises(ValueError):
            fleet.run(baselines=[1.0])


class TestBatchCallbackParity:
    def test_identical_placement_outcomes(self, pooled_fleet_runs):
        batch, callback = pooled_fleet_runs["batch"], pooled_fleet_runs["callback"]
        assert batch.placed_vms == callback.placed_vms
        assert batch.rejected_vms == callback.rejected_vms
        assert batch.server_peak_local_gb == callback.server_peak_local_gb
        assert batch.pool_peak_gb == callback.pool_peak_gb

    def test_identical_savings(self, pooled_fleet_runs):
        batch, callback = pooled_fleet_runs["batch"], pooled_fleet_runs["callback"]
        assert batch.savings == callback.savings
        for shard_b, shard_c in zip(batch.shards, callback.shards):
            assert shard_b.savings == shard_c.savings

    def test_policy_stats_merge_across_shards(self, pooled_fleet_runs):
        batch = pooled_fleet_runs["batch"]
        merged = batch.policy_stats
        assert merged.n_vms == batch.n_vms
        assert merged.n_vms == sum(s.policy_stats.n_vms for s in batch.shards)
        assert merged.n_mispredictions == sum(
            s.policy_stats.n_mispredictions for s in batch.shards
        )
        callback = pooled_fleet_runs["callback"]
        assert merged.n_mispredictions == callback.policy_stats.n_mispredictions


class TestFleetAggregation:
    def test_savings_equal_sum_of_shard_savings(self, pooled_fleet_runs):
        fleet_savings = pooled_fleet_runs["batch"].savings
        shards = pooled_fleet_runs["batch"].shards
        assert fleet_savings.baseline_dram_gb == pytest.approx(
            sum(s.savings.baseline_dram_gb for s in shards)
        )
        assert fleet_savings.required_local_dram_gb == pytest.approx(
            sum(s.savings.required_local_dram_gb for s in shards)
        )
        assert fleet_savings.required_pool_dram_gb == pytest.approx(
            sum(s.savings.required_pool_dram_gb for s in shards)
        )

    def test_merged_views_cover_every_shard(self, pooled_fleet_runs):
        result = pooled_fleet_runs["batch"]
        assert result.n_vms == sum(len(t) for t in pooled_fleet_runs["traces"])
        assert result.placed_vms + result.rejected_vms == result.n_vms
        peaks = result.server_peak_local_gb
        assert len(peaks) == 3 * 6  # shards x servers, shard-prefixed keys
        assert all("/" in key for key in peaks)
        assert set(result.results()) == {
            cfg.cluster_id for cfg in pooled_fleet_runs["fleet"].shard_configs
        }

    def test_pooling_saves_dram_at_fleet_scale(self, pooled_fleet_runs):
        savings = pooled_fleet_runs["batch"].savings
        assert savings.savings_percent > 0.0
        assert savings.required_pool_dram_gb > 0.0

    def test_compute_baselines_parallel_matches_serial(self, pooled_fleet_runs):
        traces = pooled_fleet_runs["traces"]
        serial = pooled_fleet_runs["fleet"].compute_baselines(traces)
        parallel_fleet = FleetSimulator.sharded(3, base_config(),
                                                pool_size_sockets=4, max_workers=2)
        assert parallel_fleet.compute_baselines(traces) == serial
        # Workers can also generate their own traces (deterministic per seed).
        assert parallel_fleet.compute_baselines() == serial

    def test_precomputed_baselines_match_in_run_baselines(self, pooled_fleet_runs):
        fleet = pooled_fleet_runs["fleet"]
        traces = pooled_fleet_runs["traces"]
        baselines = fleet.compute_baselines(traces)
        reused = fleet.run(
            pond_policy_factory(OPERATING_POINT, seed=3),
            traces=traces, baselines=baselines, compute_baseline=False,
        )
        assert reused.savings == pooled_fleet_runs["batch"].savings
        assert [s.baseline_required_dram_gb for s in reused.shards] == baselines

    def test_missing_baseline_raises(self):
        fleet = FleetSimulator.sharded(2, base_config(), pool_size_sockets=4)
        result = fleet.run(static_policy_factory(fraction=0.2),
                           compute_baseline=False)
        with pytest.raises(ValueError):
            result.savings
        with pytest.raises(ValueError):
            result.shards[0].savings


class TestStrandingMode:
    def test_no_pool_fleet_produces_stranding_series(self):
        fleet = FleetSimulator.utilization_sweep(
            2, base_config(), utilization_range=(0.7, 0.95), seed=9,
            constrain_memory=True,
        )
        result = fleet.run()
        assert result.pool_peak_gb == {}
        for shard_result in result.results().values():
            assert shard_result.n_samples > 0
            assert (shard_result.sample_array("stranded_percent") >= 0.0).all()

    def test_all_local_factory_reports_stats(self):
        fleet = FleetSimulator.sharded(2, base_config(), pool_size_sockets=4)
        result = fleet.run(all_local_policy_factory())
        stats = result.policy_stats
        assert stats.n_all_local == stats.n_vms == result.n_vms
        assert result.savings.required_pool_dram_gb == 0.0


class TestProcessPoolPath:
    def test_process_pool_matches_serial(self):
        serial_fleet = FleetSimulator.sharded(2, base_config(duration_days=0.3),
                                              pool_size_sockets=4)
        pooled_fleet = FleetSimulator.sharded(2, base_config(duration_days=0.3),
                                              pool_size_sockets=4, max_workers=2)
        factory = static_policy_factory(fraction=0.25, seed=1)
        serial = serial_fleet.run(factory)
        parallel = pooled_fleet.run(factory)
        assert serial.server_peak_local_gb == parallel.server_peak_local_gb
        assert serial.pool_peak_gb == parallel.pool_peak_gb
        assert serial.savings == parallel.savings
        assert parallel.policy_stats.n_vms == parallel.n_vms

"""Unit tests for the random forest and gradient-boosting models."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbm import GradientBoostingRegressor, QuantileGradientBoostingRegressor


@pytest.fixture(scope="module")
def classification_data():
    rng = np.random.default_rng(10)
    X = rng.normal(size=(300, 5))
    y = ((X[:, 0] + 0.5 * X[:, 1]) > 0).astype(int)
    return X, y


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(11)
    X = rng.uniform(-1, 1, size=(400, 3))
    y = 2.0 * X[:, 0] - X[:, 1] + 0.1 * rng.normal(size=400)
    return X, y


class TestRandomForestClassifier:
    def test_training_accuracy_high(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=20, max_depth=6, random_state=1).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_predict_proba_shape_and_normalisation(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=10, random_state=2).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_deterministic_given_seed(self, classification_data):
        X, y = classification_data
        a = RandomForestClassifier(n_estimators=8, random_state=7).fit(X, y).predict_proba(X)
        b = RandomForestClassifier(n_estimators=8, random_state=7).fit(X, y).predict_proba(X)
        assert np.array_equal(a, b)

    def test_generalises_to_held_out_data(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=25, max_depth=6, random_state=3).fit(
            X[:200], y[:200]
        )
        assert forest.score(X[200:], y[200:]) > 0.85

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((2, 3)))

    def test_invalid_estimator_count_rejected(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_without_bootstrap(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=5, bootstrap=False, random_state=4).fit(X, y)
        assert forest.score(X, y) > 0.9


class TestRandomForestRegressor:
    def test_r2_reasonable(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=20, max_depth=8, random_state=5).fit(X, y)
        assert forest.score(X, y) > 0.8

    def test_prediction_shape(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=5, random_state=6).fit(X, y)
        assert forest.predict(X).shape == (len(X),)

    def test_constant_target(self):
        X = np.random.default_rng(12).uniform(size=(60, 2))
        y = np.full(60, 2.0)
        forest = RandomForestRegressor(n_estimators=5, random_state=0).fit(X, y)
        assert np.allclose(forest.predict(X), 2.0)


class TestGradientBoostingRegressor:
    def test_fits_linear_relationship(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=60, max_depth=3, random_state=0).fit(X, y)
        residual = np.mean((gbm.predict(X) - y) ** 2)
        baseline = np.var(y)
        assert residual < 0.2 * baseline

    def test_more_stages_reduce_training_error(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(n_estimators=40, max_depth=2, random_state=1).fit(X, y)
        errors = [np.mean((pred - y) ** 2) for pred in gbm.staged_predict(X)]
        assert errors[-1] < errors[0]

    def test_subsample_option(self, regression_data):
        X, y = regression_data
        gbm = GradientBoostingRegressor(
            n_estimators=30, subsample=0.5, random_state=2
        ).fit(X, y)
        assert np.isfinite(gbm.predict(X)).all()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((3, 2)))


class TestQuantileGradientBoostingRegressor:
    def test_quantile_coverage_is_roughly_calibrated(self):
        rng = np.random.default_rng(20)
        X = rng.uniform(0, 1, size=(800, 2))
        y = X[:, 0] + rng.normal(0, 0.1, size=800)
        model = QuantileGradientBoostingRegressor(
            alpha=0.1, n_estimators=60, max_depth=3, min_samples_leaf=30, random_state=3
        ).fit(X, y)
        coverage = np.mean(model.predict(X) <= y)
        assert 0.80 <= coverage <= 0.99

    def test_lower_quantile_predicts_lower_values(self):
        rng = np.random.default_rng(21)
        X = rng.uniform(0, 1, size=(500, 2))
        y = X[:, 0] + rng.normal(0, 0.2, size=500)
        low = QuantileGradientBoostingRegressor(alpha=0.1, n_estimators=40, random_state=4).fit(X, y)
        high = QuantileGradientBoostingRegressor(alpha=0.9, n_estimators=40, random_state=4).fit(X, y)
        assert low.predict(X).mean() < high.predict(X).mean()

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            QuantileGradientBoostingRegressor(alpha=0.0)
        with pytest.raises(ValueError):
            QuantileGradientBoostingRegressor(alpha=1.0)

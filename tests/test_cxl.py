"""Unit tests for the CXL hardware layer: latency, HDM, EMC, topology."""

import pytest

from repro.cxl.emc import EMCDevice, EMCError, SlicePermissionError
from repro.cxl.hdm import GB, AddressRange, HDMDecoder
from repro.cxl.latency import (
    LOCAL_DRAM_LATENCY_NS,
    LatencyComponents,
    LatencyModel,
    pond_pool_latency_ns,
    switch_only_latency_ns,
)
from repro.cxl.topology import PoolTopology, TopologyKind, build_topology


class TestLatencyModel:
    def test_local_dram_is_85ns(self):
        assert LatencyModel().local_dram().total_ns == pytest.approx(85.0)
        assert LOCAL_DRAM_LATENCY_NS == pytest.approx(85.0)

    def test_paper_pool_latencies(self):
        model = LatencyModel()
        assert model.pond_pool(8).total_ns == pytest.approx(155.0)
        assert model.pond_pool(16).total_ns == pytest.approx(180.0)
        assert model.pond_pool(32).total_ns >= 270.0
        assert model.pond_pool(64).total_ns >= 270.0

    def test_paper_percentage_increases(self):
        model = LatencyModel()
        assert model.pond_pool(8).percent_of_local() == pytest.approx(182.4, abs=1.0)
        assert model.pond_pool(16).percent_of_local() == pytest.approx(211.8, abs=1.0)

    def test_small_pools_add_70_to_90ns(self):
        for sockets in (8, 16):
            extra = pond_pool_latency_ns(sockets) - LOCAL_DRAM_LATENCY_NS
            assert 70.0 <= extra <= 95.0

    def test_pond_beats_switch_only_by_about_a_third(self):
        pond = pond_pool_latency_ns(16)
        switch = switch_only_latency_ns(16)
        assert (switch - pond) / switch == pytest.approx(1 / 3, abs=0.06)

    def test_latency_monotone_in_pool_size(self):
        model = LatencyModel()
        values = [model.pond_pool(s).total_ns for s in (2, 8, 16, 32, 64)]
        assert values == sorted(values)

    def test_switch_only_never_faster_than_pond(self):
        for sockets in (2, 8, 16, 32, 64):
            assert switch_only_latency_ns(sockets) >= pond_pool_latency_ns(sockets)

    def test_breakdown_dict_sums_to_total(self):
        breakdown = LatencyModel().pond_pool(16)
        assert sum(breakdown.as_dict().values()) == pytest.approx(breakdown.total_ns)

    def test_latency_vs_pool_size_includes_local_entry(self):
        table = LatencyModel().latency_vs_pool_size((1, 8))
        assert table[1]["pond_ns"] == pytest.approx(85.0)
        assert table[8]["pond_ns"] == pytest.approx(155.0)

    def test_invalid_pool_size_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().pond_pool(0)

    def test_custom_components_propagate(self):
        slow_port = LatencyComponents(cxl_port_ns=50.0)
        assert LatencyModel(slow_port).pond_pool(8).total_ns > 155.0


class TestAddressRangeAndHDM:
    def test_address_range_basic(self):
        r = AddressRange(base=0, size=GB)
        assert r.contains(0)
        assert not r.contains(GB)
        assert r.size_gb == pytest.approx(1.0)

    def test_address_range_overlap(self):
        a = AddressRange(0, 2 * GB)
        b = AddressRange(GB, 2 * GB)
        c = AddressRange(2 * GB, GB)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_address_range_validation(self):
        with pytest.raises(ValueError):
            AddressRange(-1, GB)
        with pytest.raises(ValueError):
            AddressRange(0, 0)

    def test_hdm_slice_addressing_roundtrip(self):
        decoder = HDMDecoder(pool_base=16 * GB, capacity_gb=8)
        for index in range(8):
            r = decoder.slice_range(index)
            assert decoder.slice_of_address(r.base) == index
            assert decoder.slice_of_address(r.end - 1) == index
        assert decoder.slice_of_address(0) is None

    def test_hdm_online_offline_accounting(self):
        decoder = HDMDecoder(pool_base=0, capacity_gb=4)
        assert decoder.online_capacity_gb == 0
        decoder.online(0)
        decoder.online(3)
        assert decoder.online_capacity_gb == 2
        assert decoder.online_slices() == [0, 3]
        decoder.offline(0)
        assert decoder.online_capacity_gb == 1
        assert decoder.summary()["offline_gb"] == 3

    def test_hdm_validation(self):
        with pytest.raises(ValueError):
            HDMDecoder(0, capacity_gb=0)
        with pytest.raises(ValueError):
            HDMDecoder(0, capacity_gb=5, slice_gb=2)
        decoder = HDMDecoder(0, capacity_gb=2)
        with pytest.raises(IndexError):
            decoder.online(5)


class TestEMCDevice:
    def make_emc(self):
        return EMCDevice("emc-0", capacity_gb=16, n_ports=4)

    def test_attach_and_assign(self):
        emc = self.make_emc()
        port = emc.attach_host("h1")
        assert port == 0
        s = emc.assign_slice("h1")
        assert emc.owner_of(s) == "h1"
        assert emc.slices_of("h1") == [s]
        assert emc.free_gb == 15

    def test_double_attach_rejected(self):
        emc = self.make_emc()
        emc.attach_host("h1")
        with pytest.raises(EMCError):
            emc.attach_host("h1")

    def test_port_exhaustion(self):
        emc = self.make_emc()
        for i in range(4):
            emc.attach_host(f"h{i}")
        with pytest.raises(EMCError):
            emc.attach_host("h99")

    def test_slice_assignment_is_exclusive(self):
        emc = self.make_emc()
        emc.attach_host("h1")
        emc.attach_host("h2")
        s = emc.assign_slice("h1", slice_index=3)
        with pytest.raises(EMCError):
            emc.assign_slice("h2", slice_index=3)
        emc.release_slice("h1", s)
        assert emc.owner_of(s) is None
        emc.assign_slice("h2", slice_index=3)

    def test_permission_check_enforces_ownership(self):
        emc = self.make_emc()
        emc.attach_host("h1")
        emc.attach_host("h2")
        s = emc.assign_slice("h1")
        emc.check_access("h1", s)
        with pytest.raises(SlicePermissionError):
            emc.check_access("h2", s)

    def test_release_by_non_owner_rejected(self):
        emc = self.make_emc()
        emc.attach_host("h1")
        emc.attach_host("h2")
        s = emc.assign_slice("h1")
        with pytest.raises(EMCError):
            emc.release_slice("h2", s)

    def test_detach_returns_slices_to_pool(self):
        emc = self.make_emc()
        emc.attach_host("h1")
        for _ in range(5):
            emc.assign_slice("h1")
        emc.detach_host("h1")
        assert emc.free_gb == 16
        assert emc.attached_hosts == []

    def test_pool_exhaustion(self):
        emc = EMCDevice("tiny", capacity_gb=2, n_ports=2)
        emc.attach_host("h1")
        emc.assign_slice("h1")
        emc.assign_slice("h1")
        with pytest.raises(EMCError):
            emc.assign_slice("h1")

    def test_permission_table_size_matches_paper(self):
        # 1024 slices x 6 bits for 64 hosts = 768 bytes (paper Section 4.1).
        emc = EMCDevice("big", capacity_gb=1024, n_ports=64)
        assert emc.permission_table_bytes(n_hosts=64) == 768

    def test_utilization_and_summary(self):
        emc = self.make_emc()
        emc.attach_host("h1")
        for _ in range(4):
            emc.assign_slice("h1")
        assert emc.utilization() == pytest.approx(0.25)
        summary = emc.summary()
        assert summary["assigned_gb"] == 4
        assert summary["attached_hosts"] == 1

    def test_assign_to_unattached_host_rejected(self):
        emc = self.make_emc()
        with pytest.raises(EMCError):
            emc.assign_slice("ghost")


class TestTopology:
    def test_small_pool_uses_single_emc_without_switch(self):
        topo = build_topology(pool_sockets=8, pool_capacity_gb=512)
        assert topo.kind is TopologyKind.DIRECT_EMC
        assert len(topo.emcs) == 1
        assert topo.n_switches == 0
        assert not topo.retimers_required

    def test_16_socket_pool_needs_retimers(self):
        topo = build_topology(pool_sockets=16, pool_capacity_gb=1024)
        assert topo.kind is TopologyKind.DIRECT_EMC
        assert topo.retimers_required
        assert topo.access_latency_ns() == pytest.approx(180.0)

    def test_large_pool_uses_switches_and_multiple_emcs(self):
        topo = build_topology(pool_sockets=64, pool_capacity_gb=4096)
        assert topo.kind is TopologyKind.SWITCHED_EMC
        assert topo.n_switches >= 1
        assert len(topo.emcs) == 4

    def test_switch_only_topology_is_slower(self):
        pond = build_topology(16, 1024)
        switch_only = build_topology(16, 1024, kind=TopologyKind.SWITCH_ONLY)
        assert switch_only.access_latency_ns() > pond.access_latency_ns()

    def test_lane_budget_scales_with_sockets(self):
        topo = build_topology(16, 1024)
        assert topo.pcie5_lanes == 128
        assert build_topology(8, 512).pcie5_lanes == 64

    def test_direct_emc_rejects_too_many_sockets(self):
        with pytest.raises(ValueError):
            build_topology(32, 2048, kind=TopologyKind.DIRECT_EMC)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_topology(1, 512)
        with pytest.raises(ValueError):
            build_topology(8, 0)

    def test_summary_contains_latency(self):
        topo = build_topology(8, 256)
        summary = topo.summary()
        assert summary["latency_ns"] == pytest.approx(155.0)
        assert summary["capacity_gb"] == 256

"""Degenerate trace inputs: empty traces, single records, oversized chunks.

These shapes show up at the edges of real studies (a cluster with no
arrivals in its window, a trace filtered down to one VM, a chunk size tuned
for a bigger fleet) and must replay cleanly -- and identically -- through
both placement engines, the fleet runner, and the cross-shard topology
path.
"""

import numpy as np
import pytest

from repro.cluster.fleet import (
    FleetSimulator,
    PoolTopology,
    static_policy_factory,
)
from repro.cluster.pool import FixedFractionPolicy
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.trace import ClusterTrace, VMTraceRecord
from repro.cluster.tracegen import TraceGenConfig, TraceGenerator

EMPTY = ClusterTrace([], cluster_id="empty")
SINGLE = ClusterTrace([
    VMTraceRecord(vm_id="only", cluster_id="one", arrival_s=30.0,
                  lifetime_s=7200.0, cores=2, memory_gb=16.0),
], cluster_id="one")

ENGINES = ("array", "object")


def simulator(engine, **kwargs):
    defaults = dict(n_servers=3, pool_size_sockets=2,
                    constrain_memory=False, sample_interval_s=600.0)
    defaults.update(kwargs)
    return ClusterSimulator(engine=engine, **defaults)


class TestClusterSimulatorDegenerate:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_trace(self, engine):
        result = simulator(engine).run(EMPTY, policy=FixedFractionPolicy(0.3))
        assert result.placed_vms == 0
        assert result.rejected_vms == 0
        # One horizon sample at t=0 capturing the empty cluster.
        assert result.n_samples == 1
        assert result.samples[0].time_s == 0.0
        assert result.samples[0].running_vms == 0
        assert result.total_memory_gb_allocated == 0.0
        assert result.average_pool_fraction == 0.0

    def test_empty_trace_engines_identical(self):
        rows = [
            simulator(engine).run(EMPTY).sample_buffer.rows()
            for engine in ENGINES
        ]
        assert np.array_equal(rows[0], rows[1])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_single_record_trace(self, engine):
        result = simulator(engine).run(SINGLE, policy=FixedFractionPolicy(0.5))
        assert result.placed_vms == 1
        assert result.total_memory_gb_allocated == 16.0
        assert result.total_pool_gb_allocated == 8.0
        assert max(result.server_peak_local_gb.values()) == 8.0
        assert result.pool_peak_gb[0] == 8.0
        # Horizon == the single arrival; the sample grid has t=0 plus it.
        assert result.samples[-1].time_s == 30.0
        assert result.samples[-1].running_vms == 1

    def test_single_record_engines_identical(self):
        results = [
            simulator(engine).run(SINGLE, policy=FixedFractionPolicy(0.5))
            for engine in ENGINES
        ]
        assert results[0].server_peak_local_gb == results[1].server_peak_local_gb
        assert results[0].pool_peak_gb == results[1].pool_peak_gb
        assert np.array_equal(results[0].sample_buffer.rows(),
                              results[1].sample_buffer.rows())

    @pytest.mark.parametrize("engine", ENGINES)
    def test_stream_chunk_larger_than_trace(self, engine):
        cfg = TraceGenConfig(cluster_id="tiny", n_servers=3,
                             duration_days=0.1, seed=4)
        trace = TraceGenerator(cfg).generate_bulk()
        direct = simulator(engine).run(trace, policy=FixedFractionPolicy(0.3))
        streamed = simulator(engine).run(
            trace.stream(chunk_size=10 * max(1, len(trace))),
            policy=FixedFractionPolicy(0.3),
        )
        assert streamed.placed_vms == direct.placed_vms
        assert streamed.server_peak_local_gb == direct.server_peak_local_gb
        assert np.array_equal(streamed.sample_buffer.rows(),
                              direct.sample_buffer.rows())

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_stream(self, engine):
        result = simulator(engine).run(EMPTY.stream(chunk_size=8))
        assert result.placed_vms == 0
        assert result.n_samples == 1


class TestFleetDegenerate:
    def _configs(self):
        return [
            TraceGenConfig(cluster_id=f"deg-{i}", n_servers=3,
                           duration_days=0.1, seed=i)
            for i in range(2)
        ]

    def test_fleet_run_with_empty_and_single_shards(self):
        fleet = FleetSimulator(self._configs(), pool_size_sockets=4)
        result = fleet.run(static_policy_factory(fraction=0.2, seed=1),
                           traces=[EMPTY, SINGLE])
        assert result.n_vms == 1
        assert result.placed_vms == 1
        assert result.shards[0].n_vms == 0
        # Savings stay computable: the empty shard contributes zeros.
        assert result.shards[0].savings.baseline_dram_gb == 0.0
        assert result.savings.required_pool_dram_gb >= 0.0

    def test_fleet_capacity_search_single_record(self):
        fleet = FleetSimulator(self._configs()[:1], pool_size_sockets=2)
        search = fleet.capacity_search(
            static_policy_factory(fraction=0.2, seed=1),
            traces=[SINGLE], search_steps=2,
        )
        assert search.total_vms == 1
        assert search.rejection_budget >= 1

    def test_crossshard_run_with_empty_and_single_shards(self):
        topo = PoolTopology.spanning([3, 3], 2, 8)
        fleet = FleetSimulator(self._configs(), pool_topology=topo)
        result = fleet.run(static_policy_factory(fraction=0.2, seed=1),
                           traces=[EMPTY, SINGLE])
        assert result.n_vms == 1
        assert result.placed_vms == 1
        # The empty shard still produces its single horizon sample at t=0.
        assert result.shards[0].result.n_samples == 1
        assert result.shards[0].result.samples[0].time_s == 0.0
        assert result.fleet_pool_peak_gb[0] >= 0.0

    def test_crossshard_degenerate_matches_legacy_on_edge_traces(self):
        """Empty + single-record shards: topology path == shardwise path."""
        topo = PoolTopology.per_shard([3, 3], 2, 4)
        factory = static_policy_factory(fraction=0.2, seed=1)
        legacy = FleetSimulator(self._configs(), pool_size_sockets=4)
        reference = legacy.run(factory, traces=[EMPTY, SINGLE])
        fleet = FleetSimulator(self._configs(), pool_topology=topo)
        result = fleet.run(factory, traces=[EMPTY, SINGLE])
        for got, ref in zip(result.shards, reference.shards):
            assert got.result.placed_vms == ref.result.placed_vms
            assert got.result.pool_peak_gb == ref.result.pool_peak_gb
            assert np.array_equal(got.result.sample_buffer.rows(),
                                  ref.result.sample_buffer.rows())

    def test_crossshard_stream_chunk_larger_than_trace(self):
        cfgs = self._configs()
        topo = PoolTopology.spanning([3, 3], 2, 8)
        factory = static_policy_factory(fraction=0.2, seed=1)
        traces = [
            TraceGenerator(cfg).generate_bulk() for cfg in cfgs
        ]
        direct = FleetSimulator(cfgs, pool_topology=topo).run(
            factory, traces=traces
        )
        oversized = [t.stream(chunk_size=10 * max(1, len(t))) for t in traces]
        streamed = FleetSimulator(cfgs, pool_topology=topo).run(
            factory, traces=oversized
        )
        assert streamed.savings == direct.savings
        for got, ref in zip(streamed.shards, direct.shards):
            assert np.array_equal(got.result.sample_buffer.rows(),
                                  ref.result.sample_buffer.rows())

"""Unit tests for the CART decision trees."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeNode


@pytest.fixture
def separable_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(200, 3))
    y = (X[:, 0] > 0.5).astype(int)
    return X, y


class TestDecisionTreeClassifier:
    def test_fits_separable_data_perfectly(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert np.mean(tree.predict(X) == y) == 1.0

    def test_predict_proba_rows_sum_to_one(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_respects_max_depth(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf_limits_node_count(self, separable_data):
        X, y = separable_data
        small = DecisionTreeClassifier(min_samples_leaf=1).fit(X, y)
        large = DecisionTreeClassifier(min_samples_leaf=50).fit(X, y)
        assert large.node_count() <= small.node_count()

    def test_single_class_produces_leaf_only(self):
        X = np.random.default_rng(1).uniform(size=(50, 2))
        y = np.zeros(50, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count() == 1
        assert np.all(tree.predict(X) == 0)

    def test_handles_string_class_labels(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]])
        y = np.array(["low", "low", "high", "high"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert list(tree.predict(np.array([[0.05], [0.95]]))) == ["low", "high"]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))

    def test_predict_rejects_wrong_feature_count(self, separable_data):
        X, y = separable_data
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((3, 5)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)

    def test_max_features_option_values(self, separable_data):
        X, y = separable_data
        for option in ("sqrt", "log2", 0.5, 2):
            tree = DecisionTreeClassifier(max_features=option, random_state=0).fit(X, y)
            assert np.mean(tree.predict(X) == y) > 0.8

    def test_unknown_max_features_string_rejected(self, separable_data):
        X, y = separable_data
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features="bogus").fit(X, y)


class TestDecisionTreeRegressor:
    def test_fits_piecewise_constant_function(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(300, 2))
        y = np.where(X[:, 0] > 0.5, 10.0, -10.0)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert np.all(np.sign(pred) == np.sign(y))

    def test_reduces_training_error_with_depth(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, size=(400, 1))
        y = np.sin(4 * X[:, 0])
        shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(X, y)
        err_shallow = np.mean((shallow.predict(X) - y) ** 2)
        err_deep = np.mean((deep.predict(X) - y) ** 2)
        assert err_deep < err_shallow

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(4).uniform(size=(40, 3))
        y = np.full(40, 3.5)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.node_count() == 1
        assert np.allclose(tree.predict(X), 3.5)

    def test_prediction_within_target_range(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(200, 2))
        y = rng.uniform(-2, 7, size=200)
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        pred = tree.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))


class TestTreeNode:
    def test_leaf_detection(self):
        leaf = TreeNode(value=np.array([1.0]), n_samples=10, impurity=0.0)
        assert leaf.is_leaf
        parent = TreeNode(
            value=np.array([0.5]), n_samples=20, impurity=0.5, feature=0,
            threshold=0.3, left=leaf, right=leaf,
        )
        assert not parent.is_leaf
        assert parent.node_count() == 3

"""Tests for Pond's prediction models and the combined Eq.(1) optimiser."""

import numpy as np
import pytest

from repro.core.config import PondConfig
from repro.core.prediction.combined import CombinedModelOptimizer, CombinedOperatingPoint
from repro.core.prediction.features import VMMetadataEncoder, telemetry_features
from repro.core.prediction.latency_model import (
    DramBoundHeuristic,
    LatencyInsensitivityModel,
    MemoryBoundHeuristic,
)
from repro.core.prediction.untouched_model import (
    FixedFractionBaseline,
    UntouchedMemoryPredictor,
)
from repro.hypervisor.telemetry import TMACounters, VMTelemetry
from repro.workloads.catalog import build_catalog
from repro.workloads.generator import PMUFeatureGenerator
from repro.workloads.sensitivity import SCENARIO_182
from repro.experiments.fig18_19_untouched import build_untouched_dataset


@pytest.fixture(scope="module")
def training_set():
    catalog = build_catalog(seed=7)
    generator = PMUFeatureGenerator(seed=31)
    return generator.training_set(catalog, SCENARIO_182, samples_per_workload=2)


@pytest.fixture(scope="module")
def untouched_dataset():
    return build_untouched_dataset(n_vms=600, seed=5)


class TestPondConfig:
    def test_defaults(self):
        config = PondConfig()
        assert config.pdm_percent == 5.0
        assert config.tail_percentage == 98.0
        assert config.error_budget_percent == pytest.approx(2.0)
        assert config.scheduling_misprediction_target_percent == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PondConfig(pdm_percent=0.0)
        with pytest.raises(ValueError):
            PondConfig(tail_percentage=101.0)
        with pytest.raises(ValueError):
            PondConfig(pool_size_sockets=1)

    def test_with_pdm_and_scenario_copies(self):
        config = PondConfig()
        assert config.with_pdm(1.0).pdm_percent == 1.0
        from repro.workloads.sensitivity import SCENARIO_222
        assert config.with_scenario(SCENARIO_222).scenario.name == SCENARIO_222.name


class TestFeatureEncoding:
    def test_metadata_encoder_roundtrip(self):
        rows = [
            {"memory_gb": 32, "cores": 8, "vm_family": "general", "guest_os": "linux",
             "region": "r0", "history_percentiles": [0.1, 0.2, 0.3, 0.4, 0.5]},
            {"memory_gb": 64, "cores": 16, "vm_family": "memory_optimized",
             "guest_os": "windows", "region": "r1",
             "history_percentiles": [0.3, 0.4, 0.5, 0.6, 0.7]},
        ]
        encoder = VMMetadataEncoder().fit(rows)
        matrix = encoder.encode(rows)
        assert matrix.shape == (2, encoder.n_features)
        assert len(encoder.feature_names) == encoder.n_features

    def test_unknown_category_maps_to_negative(self):
        rows = [{"memory_gb": 8, "cores": 2, "vm_family": "general", "guest_os": "linux",
                 "region": "r0", "history_percentiles": [0.5] * 5}]
        encoder = VMMetadataEncoder().fit(rows)
        unseen = dict(rows[0], vm_family="exotic")
        encoded = encoder.encode_row(unseen)
        family_index = encoder.feature_names.index("vm_family")
        assert encoded[family_index] == -1

    def test_missing_history_padded(self):
        rows = [{"memory_gb": 8, "cores": 2, "vm_family": "general", "guest_os": "linux",
                 "region": "r0", "history_percentiles": [0.5]}]
        encoder = VMMetadataEncoder().fit(rows)
        encoded = encoder.encode_row(rows[0])
        assert len(encoded) == encoder.n_features

    def test_encoder_requires_fit(self):
        with pytest.raises(RuntimeError):
            VMMetadataEncoder().encode_row({"memory_gb": 8})
        with pytest.raises(ValueError):
            VMMetadataEncoder().fit([])

    def test_telemetry_features_shape(self):
        telem = VMTelemetry("vm-1")
        counters = TMACounters(backend_bound=0.5, memory_bound=0.3, store_bound=0.1,
                               dram_latency_bound=0.2, llc_mpi=3.0,
                               memory_bandwidth_gbps=10.0, memory_parallelism=2.0)
        for i in range(5):
            telem.record_counters(float(i), counters)
        assert telemetry_features(telem, percentiles=(50, 90)).shape == (14,)


class TestLatencyInsensitivityModel:
    def test_training_and_scores_in_unit_interval(self, training_set):
        model = LatencyInsensitivityModel(pdm_percent=5.0, n_estimators=20, random_state=0)
        model.fit(training_set.features, training_set.slowdowns)
        scores = model.insensitivity_score(training_set.features)
        assert np.all((scores >= 0.0) & (scores <= 1.0))

    def test_model_beats_memory_bound_heuristic(self, training_set):
        model = LatencyInsensitivityModel(pdm_percent=5.0, n_estimators=30, random_state=0)
        model.fit(training_set.features, training_set.slowdowns)
        rf_curve = model.tradeoff_curve(training_set.features, training_set.slowdowns)
        mb_curve = MemoryBoundHeuristic(pdm_percent=5.0).tradeoff_curve(
            training_set.features, training_set.slowdowns
        )
        assert rf_curve.max_insensitive_at_fp(2.0) > mb_curve.max_insensitive_at_fp(2.0)

    def test_model_at_least_matches_dram_bound(self, training_set):
        model = LatencyInsensitivityModel(pdm_percent=5.0, n_estimators=30, random_state=0)
        model.fit(training_set.features, training_set.slowdowns)
        rf = model.tradeoff_curve(training_set.features, training_set.slowdowns)
        dram = DramBoundHeuristic(pdm_percent=5.0).tradeoff_curve(
            training_set.features, training_set.slowdowns
        )
        assert rf.max_insensitive_at_fp(2.0) >= dram.max_insensitive_at_fp(2.0) - 3.0

    def test_calibrated_threshold_respects_fp_target(self, training_set):
        model = LatencyInsensitivityModel(pdm_percent=5.0, n_estimators=30, random_state=1)
        model.fit(training_set.features, training_set.slowdowns)
        model.calibrate_threshold(training_set.features, training_set.slowdowns,
                                  fp_target_percent=2.0)
        predictions = model.predict_insensitive(training_set.features)
        labelled = predictions == 1
        if labelled.any():
            fp_rate = float(np.mean(training_set.slowdowns[labelled] > 5.0)) * 100.0
            assert fp_rate <= 2.0 + 1e-6

    def test_requires_both_classes(self):
        X = np.random.default_rng(0).uniform(size=(20, 7))
        with pytest.raises(ValueError):
            LatencyInsensitivityModel(pdm_percent=5.0).fit(X, np.full(20, 50.0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LatencyInsensitivityModel().insensitivity_score(np.zeros((1, 7)))

    def test_heuristic_prediction_threshold(self, training_set):
        heuristic = DramBoundHeuristic(pdm_percent=5.0)
        predictions = heuristic.predict_insensitive(training_set.features, threshold=0.05)
        assert set(np.unique(predictions)) <= {0, 1}


class TestUntouchedMemoryPredictor:
    def test_overprediction_rate_near_target_quantile(self, untouched_dataset):
        train, test = untouched_dataset.split(test_size=0.5, seed=1)
        predictor = UntouchedMemoryPredictor(quantile=0.05, n_estimators=40, random_state=1)
        predictor.fit(train.metadata_rows, train.untouched_fractions)
        op = predictor.overprediction_rate(test.metadata_rows, test.untouched_fractions)
        assert op <= 20.0

    def test_beats_fixed_fraction_baseline(self, untouched_dataset):
        train, test = untouched_dataset.split(test_size=0.5, seed=2)
        predictor = UntouchedMemoryPredictor(quantile=0.03, n_estimators=40, random_state=2)
        predictor.fit(train.metadata_rows, train.untouched_fractions)
        harvest = predictor.average_untouched_percent(test.metadata_rows)
        op = predictor.overprediction_rate(test.metadata_rows, test.untouched_fractions)
        baseline = FixedFractionBaseline(fraction=harvest / 100.0)
        baseline_op = baseline.overprediction_rate(test.metadata_rows, test.untouched_fractions)
        assert op < baseline_op

    def test_znuma_prediction_is_gb_aligned_and_bounded(self, untouched_dataset):
        train, _ = untouched_dataset.split(test_size=0.3, seed=3)
        predictor = UntouchedMemoryPredictor(quantile=0.05, n_estimators=20, random_state=3)
        predictor.fit(train.metadata_rows, train.untouched_fractions)
        row = train.metadata_rows[0]
        znuma = predictor.predict_znuma_gb(row, memory_gb=32.0, slice_gb=1)
        assert znuma == int(znuma)
        assert 0.0 <= znuma <= 32.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            UntouchedMemoryPredictor().predict_fraction([{}])

    def test_label_validation(self):
        rows = [{"memory_gb": 8, "cores": 2, "vm_family": "general", "guest_os": "linux",
                 "region": "r0", "history_percentiles": [0.5] * 5}]
        with pytest.raises(ValueError):
            UntouchedMemoryPredictor().fit(rows, [1.5])
        with pytest.raises(ValueError):
            UntouchedMemoryPredictor().fit([], [])

    def test_fixed_baseline_tradeoff_curve_monotone(self, untouched_dataset):
        baseline = FixedFractionBaseline(fraction=0.15)
        avg, op = baseline.tradeoff_curve(untouched_dataset.metadata_rows,
                                          untouched_dataset.untouched_fractions)
        assert np.all(np.diff(avg) >= 0)
        assert np.all(np.diff(op) >= -1e-9)


class TestCombinedModel:
    def li_curve(self, fp):
        # More FP budget lets more workloads be labelled insensitive, saturating at 40%.
        return min(40.0, 10.0 + 10.0 * fp)

    def um_curve(self, op):
        return min(30.0, 5.0 + 8.0 * op)

    def test_operating_point_derived_quantities(self):
        point = CombinedOperatingPoint(fp_percent=1.0, op_percent=1.0,
                                       li_percent=30.0, um_percent=20.0)
        assert point.objective == pytest.approx(50.0)
        assert point.pool_dram_percent == pytest.approx(100 * (0.3 + 0.7 * 0.2))
        assert point.scheduling_misprediction_percent == pytest.approx(
            100 * (0.3 * 0.01 + 0.01 * 0.25)
        )

    def test_solver_respects_budget(self):
        optimizer = CombinedModelOptimizer(self.li_curve, self.um_curve)
        point = optimizer.solve(error_budget_percent=2.0)
        assert point.fp_percent + point.op_percent <= 2.0 + 1e-9
        assert point.objective >= self.li_curve(2.0) + self.um_curve(0.0) - 1e-9 or \
            point.objective >= self.li_curve(0.0) + self.um_curve(2.0) - 1e-9

    def test_sweep_monotone_pool_dram(self):
        optimizer = CombinedModelOptimizer(self.li_curve, self.um_curve)
        pool, mispred = optimizer.sweep([0.0, 1.0, 2.0, 4.0])
        assert np.all(np.diff(pool) >= -1e-9)
        assert len(mispred) == 4

    def test_zero_budget_gives_zero_mispredictions(self):
        optimizer = CombinedModelOptimizer(self.li_curve, self.um_curve)
        point = optimizer.solve(0.0)
        assert point.fp_percent == 0.0
        assert point.op_percent == 0.0
        assert point.scheduling_misprediction_percent == 0.0

    def test_curve_from_points_monotone_envelope(self):
        curve = CombinedModelOptimizer.curve_from_points([0, 1, 2, 3], [5, 4, 10, 8])
        assert curve(0.5) == 5
        assert curve(2.5) == 10
        assert curve(-1.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            CombinedModelOptimizer(self.li_curve, self.um_curve,
                                   op_violation_probability=1.5)
        optimizer = CombinedModelOptimizer(self.li_curve, self.um_curve)
        with pytest.raises(ValueError):
            optimizer.solve(-1.0)
        with pytest.raises(ValueError):
            CombinedModelOptimizer.curve_from_points([], [])
